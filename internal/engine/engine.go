package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/heartbeat"
	"repro/internal/netsim"
	"repro/internal/telemetry"
	"repro/internal/watchdog"
)

// EngineOID is the well-known object ID every engine exports its control
// interface under (registered in each node's class registry in the
// original; a package constant here).
var EngineOID = com.MustParseGUID("{0f7e4a10-2222-4000-8000-0e0e0e0e0e01}")

// Errors.
var (
	// ErrNotPrimary is returned for primary-only operations.
	ErrNotPrimary = errors.New("engine: not primary")

	// ErrNotBackup is returned for backup-only operations.
	ErrNotBackup = errors.New("engine: not backup")

	// ErrStopped is returned after the engine shuts down.
	ErrStopped = errors.New("engine: stopped")

	// ErrPeerUnavailable means the peer engine could not be reached.
	ErrPeerUnavailable = errors.New("engine: peer unavailable")
)

// peerSource is the heartbeat-monitor key for the peer engine.
const peerSource = "__peer_engine__"

// snapshotStore is the checkpoint-store contract the engine uses.
type snapshotStore = checkpoint.SnapshotStore

// component is one locally monitored software component (an FTIM-linked
// application, an OPC server, the diverter...).
type component struct {
	name     string
	timeout  time.Duration
	rule     RecoveryRule
	restart  func() error
	restarts int
	gaveUp   bool

	// Failure telemetry feeding the recovery policy.
	lastFailAt     time.Time
	ewmaRate       float64 // failures/sec, EWMA over inter-failure gaps
	failedRestarts int     // consecutive restart-provision errors
	recoverSum     time.Duration
	recoverN       int
}

// statsLocked assembles the policy inputs; e.mu must be held.
func (c *component) statsLocked(role Role, now time.Time) ComponentStats {
	s := ComponentStats{
		Component:      c.name,
		Attempt:        c.restarts,
		Rule:           c.rule,
		Role:           role,
		FailureRate:    c.ewmaRate,
		FailedRestarts: c.failedRestarts,
	}
	if !c.lastFailAt.IsZero() {
		s.SinceLast = now.Sub(c.lastFailAt)
	}
	if c.recoverN > 0 {
		s.MeanRecovery = c.recoverSum / time.Duration(c.recoverN)
	}
	return s
}

// observeFailureLocked folds one failure arrival into the EWMA; e.mu must
// be held. Called before statsLocked so the current failure is included.
func (c *component) observeFailureLocked(now time.Time) {
	if !c.lastFailAt.IsZero() {
		dt := now.Sub(c.lastFailAt).Seconds()
		if dt <= 0 {
			dt = 1e-9
		}
		inst := 1 / dt
		if c.ewmaRate == 0 {
			c.ewmaRate = inst
		} else {
			c.ewmaRate = 0.5*inst + 0.5*c.ewmaRate
		}
	}
	c.lastFailAt = now
}

// engineInstruments are the engine's registry-resolved metrics; all
// fields stay nil (recording is a no-op) when Config.Metrics is unset.
type engineInstruments struct {
	roleTransitions *telemetry.Counter
	switchovers     *telemetry.Counter
	restarts        *telemetry.Counter
	demotions       *telemetry.Counter
	peerDetect      *telemetry.Histogram // silence → peer-failure declaration, µs
	compDetect      *telemetry.Histogram // silence → component-failure declaration, µs
	switchoverDur   *telemetry.Histogram // TakeOver entry → app reactivated, µs
}

// Engine is one node's OFTT engine — or, on a fabric node, one group's
// member engine sharing the node's transport with many others.
type Engine struct {
	node  *cluster.Node
	cfg   Config
	peers []string // normalized cfg.Peers; len >= 2 activates the lease path
	sink  telemetry.Sink
	ins   engineInstruments

	networks []*netsim.Network

	mu              sync.Mutex
	role            Role
	incarnation     uint64
	policy          RecoveryPolicy // never nil; StaticPolicy by default
	components      map[string]*component
	onRole          []func(Role)
	stopped         bool
	peerFailed      bool
	dualBackupBeats int
	lease           leaseState
	groupSeq        uint64

	beatsPaused atomic.Bool // shared-transport SuspendBeats

	hbmon     *heartbeat.Monitor
	emitter   *heartbeat.Emitter
	dogs      *watchdog.Table
	store     snapshotStore
	streamIns *checkpoint.StreamInstruments // nil without Config.Metrics
	recv      *checkpoint.ReceiverState     // shared across inbound ckpt conns

	exporters []*dcom.Exporter
	hbSocks   []*netsim.DatagramSock
	ckptLst   []*netsim.Listener

	peerMu      sync.Mutex
	peerClients map[string]*dcom.Client
	senders     map[string]*peerShipper

	switchovers int
	demotions   int

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New creates an engine for node, paired with cfg.PeerNode. sink receives
// status reports, events, and recovery spans; pass nil (or
// telemetry.NullSink{}) to run without an instrumentation plane
// (supported per Section 2.2.4).
func New(node *cluster.Node, cfg Config, sink telemetry.Sink) *Engine {
	e, err := NewWithError(node, cfg, sink)
	if err != nil {
		var ce *ConfigError
		if errors.As(err, &ce) {
			// The legacy constructor has no error return; an invalid
			// membership or timeout is a programming error, not a runtime
			// condition. NewWithError surfaces it as a typed error instead.
			panic(err)
		}
		// Only the persistent store can otherwise fail; fall back to memory
		// so the legacy constructor keeps its signature.
		cfg.StorePath = ""
		e, _ = NewWithError(node, cfg, sink)
	}
	return e
}

// NewWithError is New surfacing store-open failures (only possible with
// Config.StorePath set).
func NewWithError(node *cluster.Node, cfg Config, sink telemetry.Sink) (*Engine, error) {
	cfg.applyDefaults()
	if err := cfg.validateFor(node.Name()); err != nil {
		return nil, err
	}
	if sink == nil {
		sink = telemetry.NullSink{}
	}
	var ins engineInstruments
	var streamIns *checkpoint.StreamInstruments
	var walIns *checkpoint.WALInstruments
	if reg := cfg.Metrics; reg != nil {
		label := `{node="` + node.Name() + `"}`
		ins = engineInstruments{
			roleTransitions: reg.Counter("oftt_engine_role_transitions_total" + label),
			switchovers:     reg.Counter("oftt_engine_switchovers_total" + label),
			restarts:        reg.Counter("oftt_engine_restarts_total" + label),
			demotions:       reg.Counter("oftt_engine_demotions_total" + label),
			peerDetect:      reg.Histogram("oftt_engine_peer_detect_us"+label, telemetry.DurationBuckets...),
			compDetect:      reg.Histogram("oftt_engine_component_detect_us"+label, telemetry.DurationBuckets...),
			switchoverDur:   reg.Histogram("oftt_engine_switchover_us"+label, telemetry.DurationBuckets...),
		}
		streamIns = &checkpoint.StreamInstruments{
			SentChunks:  reg.Counter("oftt_ckpt_stream_chunks_total" + label),
			WireBytes:   reg.Counter("oftt_ckpt_stream_wire_bytes_total" + label),
			RawBytes:    reg.Counter("oftt_ckpt_stream_raw_bytes_total" + label),
			Inflight:    reg.Gauge("oftt_ckpt_stream_inflight_chunks" + label),
			RecvCorrupt: reg.Counter("oftt_ckpt_recv_corrupt_total" + label),
			Resumes:     reg.Counter("oftt_ckpt_stream_resumes_total" + label),
			OpsShipped:  reg.Counter("oftt_oplog_shipped_total" + label),
			OpBytes:     reg.Counter("oftt_oplog_shipped_bytes_total" + label),
		}
		walIns = &checkpoint.WALInstruments{
			Segments:     reg.Gauge("oftt_ckpt_wal_segments" + label),
			SegmentBytes: reg.Gauge("oftt_ckpt_wal_bytes" + label),
			Appends:      reg.Counter("oftt_ckpt_wal_appends_total" + label),
			AppendBytes:  reg.Counter("oftt_ckpt_wal_append_bytes_total" + label),
			Compactions:  reg.Counter("oftt_ckpt_wal_compactions_total" + label),
			CompactDur:   reg.Histogram("oftt_ckpt_wal_compact_us"+label, telemetry.DurationBuckets...),
		}
	}
	var store snapshotStore = checkpoint.NewStore()
	switch {
	case cfg.StoreDir != "":
		ws, err := checkpoint.NewWALStore(checkpoint.WALConfig{
			Dir:         cfg.StoreDir,
			Instruments: walIns,
		})
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint store: %w", err)
		}
		store = ws
	case cfg.StorePath != "":
		ps, err := checkpoint.NewPersistentStore(cfg.StorePath)
		if err != nil {
			return nil, fmt.Errorf("engine: checkpoint store: %w", err)
		}
		store = ps
	}
	return &Engine{
		node:        node,
		cfg:         cfg,
		peers:       append([]string(nil), cfg.Peers...),
		sink:        sink,
		ins:         ins,
		networks:    node.Networks(),
		role:        RoleNegotiating,
		policy:      resolvePolicy(cfg.Policy),
		components:  make(map[string]*component),
		dogs:        watchdog.NewTable(),
		store:       store,
		streamIns:   streamIns,
		recv:        checkpoint.NewReceiverState(store, streamIns),
		peerClients: make(map[string]*dcom.Client),
		senders:     make(map[string]*peerShipper),
		stop:        make(chan struct{}),
	}, nil
}

// resolvePolicy defaults a nil policy to the classic static behavior.
func resolvePolicy(p RecoveryPolicy) RecoveryPolicy {
	if p == nil {
		return StaticPolicy{}
	}
	return p
}

// SetRecoveryPolicy swaps the engine's recovery policy at run-time. Nil
// restores the static default.
func (e *Engine) SetRecoveryPolicy(p RecoveryPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.policy = resolvePolicy(p)
}

// Node returns the hosting node's name.
func (e *Engine) Node() string { return e.node.Name() }

// Role returns the current role.
func (e *Engine) Role() Role {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.role
}

// HoldsLease is the write fence for externally-visible acknowledgements:
// it reports whether this engine is primary AND, in quorum mode, has
// heard from a majority of the group within LeaseDuration as of now.
//
// Role alone is not a safe ack guard. A primary whose process was frozen
// (SIGSTOP, VM pause, GC-of-the-OS) wakes up still believing it is
// primary and can acknowledge queued client calls before the first
// buffered peer beat — carrying the successor's higher term — demotes
// it. Checking lease freshness at the ack point closes that window: on
// wake, peerSeen is stale by the length of the freeze, so the fence
// fails until real beats arrive, and the first such beat demotes a stale
// holder before refreshing it. Pair-protocol groups (fewer than three
// replicas) have no lease and fall back to the role check.
func (e *Engine) HoldsLease() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.role != RolePrimary {
		return false
	}
	if !e.quorumOn() {
		return true
	}
	now := time.Now()
	live := 1 // self
	for _, t := range e.lease.peerSeen {
		if now.Sub(t) <= e.cfg.LeaseDuration {
			live++
		}
	}
	return live >= e.quorum()
}

// Watchdogs exposes the engine-hosted (reliable) watchdog table.
func (e *Engine) Watchdogs() *watchdog.Table { return e.dogs }

// Store exposes the backup-side checkpoint store.
func (e *Engine) Store() checkpoint.SnapshotStore { return e.store }

// Switchovers reports how many times this engine has taken over.
func (e *Engine) Switchovers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.switchovers
}

// Demotions reports how many times this engine stepped down from primary
// (commanded switchovers plus split-brain tie-breaks). Invariant checkers
// use the delta across a partition heal to assert exactly one node demoted.
func (e *Engine) Demotions() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.demotions
}

// SuspendBeats pauses this engine's outbound heartbeats without stopping
// the engine: to the peer the engine looks hung. Fault injection uses this
// to model a wedged-but-alive middleware process. ResumeBeats undoes it.
func (e *Engine) SuspendBeats() {
	e.beatsPaused.Store(true)
	if e.emitter != nil {
		e.emitter.Pause()
	}
}

// ResumeBeats re-enables outbound heartbeats after SuspendBeats.
func (e *Engine) ResumeBeats() {
	e.beatsPaused.Store(false)
	if e.emitter != nil {
		e.emitter.Resume()
	}
}

// OnRoleChange registers a callback fired (off the engine lock) on every
// role transition, including the initial one. FTIMs use this to activate
// or deactivate the application.
func (e *Engine) OnRoleChange(fn func(Role)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onRole = append(e.onRole, fn)
}

// Start binds the engine's endpoints, launches failure detection, and
// begins role negotiation. proc is the engine's hosting process; killing
// it (the paper's "OFTT middleware failure") abruptly fails every engine
// endpoint.
func (e *Engine) Start(proc *cluster.Process) error {
	if e.cfg.Transport != nil {
		return e.startShared(proc)
	}
	rpcAddr := e.node.Addr("engine-rpc")
	hbAddr := e.node.Addr("engine-hb")
	ckptAddr := e.node.Addr("engine-ckpt")

	for _, n := range e.networks {
		exp, err := dcom.NewExporter(n, rpcAddr)
		if err != nil {
			e.teardownEndpoints()
			return fmt.Errorf("engine: bind rpc on %s: %w", n.Name(), err)
		}
		if err := exp.Export(EngineOID, &Stub{e: e}); err != nil {
			exp.Close()
			e.teardownEndpoints()
			return err
		}
		e.exporters = append(e.exporters, exp)

		sock, err := n.ListenDatagram(hbAddr)
		if err != nil {
			e.teardownEndpoints()
			return fmt.Errorf("engine: bind hb on %s: %w", n.Name(), err)
		}
		e.hbSocks = append(e.hbSocks, sock)

		lst, err := n.Listen(ckptAddr)
		if err != nil {
			e.teardownEndpoints()
			return fmt.Errorf("engine: bind ckpt on %s: %w", n.Name(), err)
		}
		e.ckptLst = append(e.ckptLst, lst)

		if proc != nil {
			proc.OwnEndpoint(n, rpcAddr)
			proc.OwnEndpoint(n, hbAddr)
			proc.OwnEndpoint(n, ckptAddr)
			proc.OwnEndpoint(n, e.node.Addr("engine-rpc-cli"))
			proc.OwnEndpoint(n, e.node.Addr("engine-ckpt-cli"))
			proc.OwnEndpoint(n, e.node.Addr("engine-hello-cli"))
		}
	}

	// Failure detector: peer engine + local components.
	e.hbmon = heartbeat.NewMonitor(e.cfg.SweepInterval)
	if reg := e.cfg.Metrics; reg != nil {
		label := `{node="` + e.node.Name() + `"}`
		e.hbmon.Instrument(heartbeat.Instruments{
			Misses: reg.Counter("oftt_heartbeat_misses_total" + label),
			Gap:    reg.Histogram("oftt_heartbeat_gap_us"+label, telemetry.DurationBuckets...),
		})
	}
	e.hbmon.OnRecover(func(source string) {
		if source == peerSource {
			e.onPeerRecovered()
			return
		}
		e.event(source, "recovery", "heartbeats resumed")
	})
	if !e.quorumOn() {
		// Pair protocol: the monitor declares the single peer dead. The
		// quorum path instead tracks per-peer liveness inside the lease
		// state, so three-plus-replica groups register no peer watch.
		e.hbmon.Watch(peerSource, e.cfg.PeerTimeout, func(_ string, lastSeen time.Time) {
			if !lastSeen.IsZero() {
				e.ins.peerDetect.ObserveDuration(time.Since(lastSeen))
			}
			e.onPeerFailure()
		})
	}
	e.hbmon.Start()

	// Own heartbeat to the peer, fanned out on every network segment.
	e.emitter = heartbeat.NewEmitter("engine@"+e.node.Name(), e.cfg.HeartbeatInterval, e.broadcastBeat)
	e.emitter.SetStatus(RoleNegotiating.String())
	e.emitter.Start()

	// Peer-beat receivers (one per segment) and checkpoint receivers.
	for _, sock := range e.hbSocks {
		sock := sock
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.recvBeats(sock)
		}()
	}
	for _, lst := range e.ckptLst {
		lst := lst
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.acceptCheckpoints(lst)
		}()
	}

	if e.quorumOn() {
		// Quorum groups elect instead of negotiating: arm the election
		// clock and let the beat loop drive it.
		e.initLease()
	} else {
		// Negotiate in the background; the engine is usable immediately.
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.negotiate()
		}()
	}

	e.reportStatus()
	return nil
}

// startShared registers the engine with the node's fabric transport
// instead of binding endpoints: beats, failure detection, control RPC and
// checkpoint shipping all ride the shared per-node plumbing. The engine
// itself owns no goroutines in this mode — a node can host thousands.
func (e *Engine) startShared(_ *cluster.Process) error {
	tr := e.cfg.Transport
	if e.quorumOn() {
		e.initLease()
	} else {
		// Pair-over-fabric: per-group peer watch on the shared monitor.
		tr.Monitor().WatchFull(e.monKey(peerSource), e.cfg.PeerTimeout,
			func(_ string, lastSeen time.Time) {
				if !lastSeen.IsZero() {
					e.ins.peerDetect.ObserveDuration(time.Since(lastSeen))
				}
				e.onPeerFailure()
			},
			func(string) { e.onPeerRecovered() })
	}
	tr.Register(e)
	if !e.quorumOn() {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.negotiate()
		}()
	}
	e.reportStatus()
	return nil
}

// monitor returns the failure detector serving this engine: its own in
// standalone mode, the node's shared one on a fabric transport.
func (e *Engine) monitor() *heartbeat.Monitor {
	if e.cfg.Transport != nil {
		return e.cfg.Transport.Monitor()
	}
	return e.hbmon
}

// monKey namespaces a detector source key per group on shared monitors.
func (e *Engine) monKey(name string) string {
	if e.cfg.Transport != nil {
		return e.cfg.GroupID + "|" + name
	}
	return name
}

func (e *Engine) teardownEndpoints() {
	for _, exp := range e.exporters {
		exp.Close()
	}
	for _, s := range e.hbSocks {
		_ = s.Close()
	}
	for _, l := range e.ckptLst {
		_ = l.Close()
	}
	e.exporters, e.hbSocks, e.ckptLst = nil, nil, nil
}

// Stop shuts the engine down cleanly.
func (e *Engine) Stop() {
	e.once.Do(func() {
		e.mu.Lock()
		e.stopped = true
		e.role = RoleShutdown
		e.mu.Unlock()
		close(e.stop)
	})
	if e.emitter != nil {
		e.emitter.Stop()
	}
	if e.hbmon != nil {
		e.hbmon.Stop()
	}
	if tr := e.cfg.Transport; tr != nil {
		tr.Unregister(e)
		tr.Monitor().Unwatch(e.monKey(peerSource))
		e.mu.Lock()
		comps := make([]string, 0, len(e.components))
		for name := range e.components {
			comps = append(comps, name)
		}
		e.mu.Unlock()
		for _, name := range comps {
			tr.Monitor().Unwatch(e.monKey(name))
		}
	}
	e.teardownEndpoints()
	e.peerMu.Lock()
	for peer, c := range e.peerClients {
		c.Close()
		delete(e.peerClients, peer)
	}
	for peer, ps := range e.senders {
		ps.close()
		delete(e.senders, peer)
	}
	e.peerMu.Unlock()
	e.dogs.Close()
	e.wg.Wait()
	if c, ok := e.store.(interface{ Close() error }); ok {
		_ = c.Close() // WALStore: stop the compactor, close the segment
	}
}

// broadcastBeat sends one engine heartbeat to every peer on every network
// segment. In quorum mode the emitter's tick doubles as the election
// clock, and the beat carries the lease state.
func (e *Engine) broadcastBeat(b heartbeat.Beat) {
	if e.quorumOn() {
		e.leaseTick()
		ckpt := e.store.LastSeq()
		e.mu.Lock()
		b.Term = e.lease.term
		b.Vote = e.lease.votedFor
		b.Cand = e.lease.candidate
		b.Ckpt = ckpt
		e.mu.Unlock()
	}
	data, err := b.Encode()
	if err != nil {
		return
	}
	for _, peer := range e.peers {
		peerHB := netsim.Addr(peer + ":engine-hb")
		for _, sock := range e.hbSocks {
			_ = sock.Send(peerHB, data)
		}
	}
}

// recvBeats pumps peer heartbeats from one segment into the detector.
func (e *Engine) recvBeats(sock *netsim.DatagramSock) {
	for {
		select {
		case <-e.stop:
			return
		default:
		}
		d, err := sock.RecvTimeout(100 * time.Millisecond)
		if err != nil {
			if errors.Is(err, netsim.ErrClosed) {
				return
			}
			continue
		}
		b, err := heartbeat.DecodeBeat(d.Payload)
		if err != nil {
			continue
		}
		e.observePeerBeat(b)
	}
}

func (e *Engine) observePeerBeat(b heartbeat.Beat) {
	if e.quorumOn() {
		from := strings.TrimPrefix(b.Source, "engine@")
		e.observeLease(from, heartbeat.GroupState{
			Seq: b.Seq, Role: int32(roleFromStatus(b.Status)),
			Term: b.Term, Vote: b.Vote, Cand: b.Cand, Ckpt: b.Ckpt,
		}, time.Now())
		return
	}
	e.hbmon.Observe(heartbeat.Beat{Source: peerSource, Seq: b.Seq, Status: b.Status, SentAt: b.SentAt})
	e.pairObserve(roleFromStatus(b.Status))
}

// pairObserve runs the 2-node pair's split-brain and dual-backup
// resolution against the peer's reported role. Both the classic datagram
// path and the fabric's mux path land here for 2-replica groups.
func (e *Engine) pairObserve(peerRole Role) {
	// Split-brain resolution: if both engines believe they are primary
	// (network partition healed), the lexicographically smaller node name
	// keeps the role; the other demotes.
	if peerRole == RolePrimary && e.Role() == RolePrimary && !e.cfg.DisableTieBreak {
		if e.node.Name() > e.cfg.PeerNode {
			e.event("engine", "role", "dual primary detected; demoting (tie-break)")
			e.span("oftt-engine", telemetry.PhaseDecision, "split-brain tie-break: demote")
			e.Demote("split-brain tie-break")
			e.span("oftt-engine", telemetry.PhaseRecovered, "split-brain resolved")
		}
	}

	// Dual-backup recovery: transient protocol races (e.g. a switchover
	// command crossing a tie-break) could leave both nodes backup. If the
	// condition persists across several beats, the tie-break winner
	// promotes itself so the pair regains a primary.
	e.mu.Lock()
	if peerRole == RoleBackup && e.role == RoleBackup {
		e.dualBackupBeats++
	} else {
		e.dualBackupBeats = 0
	}
	// Preference is unknown from a beat, so pass our own to cancel it and
	// let node names decide deterministically on both sides.
	promote := e.dualBackupBeats >= 10 && e.winsTie(e.cfg.Preferred, e.cfg.PeerNode)
	if promote {
		e.dualBackupBeats = 0
	}
	e.mu.Unlock()
	if promote {
		e.dispatchAct(func() {
			e.event("engine", "role", "pair stuck with no primary; promoting (tie-break)")
			e.TakeOver("dual-backup recovery")
		})
	}
}

// roleFromStatus maps a beat's status string back to a Role (beats carry
// Role.String(); anything else reads as unknown/zero).
func roleFromStatus(s string) Role {
	switch s {
	case RoleNegotiating.String():
		return RoleNegotiating
	case RolePrimary.String():
		return RolePrimary
	case RoleBackup.String():
		return RoleBackup
	case RoleShutdown.String():
		return RoleShutdown
	default:
		return 0
	}
}

// muxState is the engine's StateSource on the fabric's per-pair beat
// streams: each pull emits the member's liveness + role + lease state,
// and doubles as the election tick. Returning ok=false (paused or
// stopped) makes the member look silent without touching the stream.
// One mutex acquisition covers the tick and the snapshot — at thousands
// of pulls per second per node the extra lock round-trips showed up in
// whole-fabric profiles.
func (e *Engine) muxState(now time.Time) (heartbeat.GroupState, bool) {
	if e.beatsPaused.Load() {
		return heartbeat.GroupState{}, false
	}
	var act func()
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return heartbeat.GroupState{}, false
	}
	if e.quorumOn() {
		act = e.leaseTickLocked(now)
	}
	e.groupSeq++
	gs := heartbeat.GroupState{
		Group: e.cfg.GroupID,
		Seq:   e.groupSeq,
		Role:  int32(e.role),
		Term:  e.lease.term,
		Vote:  e.lease.votedFor,
		Cand:  e.lease.candidate,
		Ckpt:  e.store.LastSeq(),
	}
	e.mu.Unlock()
	if act != nil {
		e.dispatchAct(act) // role change lands in a later beat's snapshot
	}
	return gs, true
}

// observeFromPeer folds one demultiplexed GroupState entry from a peer
// node into this member's protocol state (fabric mode's receive path).
// now is the datagram's arrival timestamp, shared across its entries.
func (e *Engine) observeFromPeer(from string, gs heartbeat.GroupState, now time.Time) {
	if e.quorumOn() {
		e.observeLease(from, gs, now)
		return
	}
	if from != e.cfg.PeerNode {
		return
	}
	e.monitor().Observe(heartbeat.Beat{
		Source: e.monKey(peerSource), Seq: gs.Seq,
		Status: Role(gs.Role).String(), SentAt: now,
	})
	e.pairObserve(Role(gs.Role))
}

// acceptCheckpoints serves inbound checkpoint connections into the store.
func (e *Engine) acceptCheckpoints(lst *netsim.Listener) {
	for {
		conn, err := lst.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			// The shared receiver state lets a transfer broken by one
			// connection's death resume on the next; corrupt peers bump
			// oftt_ckpt_recv_corrupt_total instead of vanishing silently.
			e.recv.Serve(conn, e.stop)
		}()
	}
}

// event forwards to the instrumentation plane's event log.
func (e *Engine) event(component, kind, detail string) {
	e.sink.Emit(telemetry.Event{
		Time:      time.Now(),
		Node:      e.node.Name(),
		Component: component,
		Kind:      kind,
		Detail:    detail,
	})
}

// span files one step of a recovery timeline. Spans outside an open
// timeline (e.g. the negotiated startup promotion) are dropped by the
// tracer, so emission sites need no in-recovery bookkeeping.
func (e *Engine) span(component string, phase telemetry.Phase, detail string) {
	e.sink.RecordSpan(telemetry.SpanEvent{
		Node:      e.node.Name(),
		Component: component,
		Phase:     phase,
		Detail:    detail,
	})
}

// reportStatus pushes the engine's status row.
func (e *Engine) reportStatus() {
	e.mu.Lock()
	role := e.role
	peerFailed := e.peerFailed
	e.mu.Unlock()
	detail := ""
	if peerFailed {
		detail = "peer failed"
	}
	e.sink.ReportStatus(telemetry.Status{
		Node:      e.node.Name(),
		Component: "oftt-engine",
		Kind:      telemetry.KindEngine,
		State:     role.String(),
		Detail:    detail,
		UpdatedAt: time.Now(),
	})
}

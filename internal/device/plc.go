package device

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Errors.
var (
	// ErrPLCDown is returned when polling a failed PLC.
	ErrPLCDown = errors.New("device: PLC down")

	// ErrBusDown is returned when the field bus link is severed.
	ErrBusDown = errors.New("device: field bus down")

	// ErrNoRegister is returned for unknown register names.
	ErrNoRegister = errors.New("device: no such register")
)

// Registers is the PLC's data table, keyed by register name. Input
// registers carry sensor values, output registers drive actuators, and
// internal registers hold logic state.
type Registers struct {
	mu   sync.RWMutex
	vals map[string]float64
	ok   map[string]bool // per-register validity (sensor dead -> false)
}

// NewRegisters returns an empty data table.
func NewRegisters() *Registers {
	return &Registers{vals: make(map[string]float64), ok: make(map[string]bool)}
}

// Set stores a register with validity.
func (r *Registers) Set(name string, v float64, valid bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vals[name] = v
	r.ok[name] = valid
}

// Get reads a register; valid is false for dead inputs.
func (r *Registers) Get(name string) (v float64, valid, exists bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, exists = r.vals[name]
	return v, r.ok[name], exists
}

// Names lists register names, sorted.
func (r *Registers) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.vals))
	for n := range r.vals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies the data table.
func (r *Registers) Snapshot() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.vals))
	for k, v := range r.vals {
		out[k] = v
	}
	return out
}

// LogicFunc is one rung of the PLC program, run every scan after inputs
// are read and before outputs are written.
type LogicFunc func(regs *Registers, elapsed time.Duration)

// PLC runs the classic scan cycle: read inputs, execute logic, write
// outputs, at a fixed scan period.
type PLC struct {
	name string
	scan time.Duration

	mu        sync.Mutex
	sensors   []*Sensor
	actuators map[string]*Actuator
	outputs   map[string]string // register name -> actuator name
	logic     []LogicFunc
	regs      *Registers
	failed    bool
	scans     int64
	started   time.Time

	stop chan struct{}
	done chan struct{}
	once sync.Once
	run  bool
}

// NewPLC creates a stopped PLC with the given scan period.
func NewPLC(name string, scan time.Duration) *PLC {
	if scan <= 0 {
		scan = 100 * time.Millisecond
	}
	return &PLC{
		name:      name,
		scan:      scan,
		actuators: make(map[string]*Actuator),
		outputs:   make(map[string]string),
		regs:      NewRegisters(),
	}
}

// Name returns the PLC name.
func (p *PLC) Name() string { return p.name }

// Registers exposes the data table (for the OPC adapter).
func (p *PLC) Registers() *Registers { return p.regs }

// AttachSensor wires a sensor to the input register named after it.
func (p *PLC) AttachSensor(s *Sensor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sensors = append(p.sensors, s)
	p.regs.Set(s.Name, 0, false)
}

// AttachActuator wires an actuator to an output register.
func (p *PLC) AttachActuator(register string, a *Actuator) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.actuators[a.Name] = a
	p.outputs[register] = a.Name
	p.regs.Set(register, 0, true)
}

// AddLogic appends a program rung.
func (p *PLC) AddLogic(fn LogicFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logic = append(p.logic, fn)
}

// Start begins the scan cycle.
func (p *PLC) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.run {
		return
	}
	p.run = true
	p.failed = false
	p.started = time.Now()
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	p.once = sync.Once{}
	go p.scanLoop(p.stop, p.done)
}

func (p *PLC) scanLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(p.scan)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.ScanOnce()
		case <-stop:
			return
		}
	}
}

// ScanOnce runs one scan cycle immediately (also used by tests to step
// deterministically).
func (p *PLC) ScanOnce() {
	p.mu.Lock()
	if p.failed {
		p.mu.Unlock()
		return
	}
	elapsed := time.Since(p.started)
	sensors := append([]*Sensor(nil), p.sensors...)
	logic := append([]LogicFunc(nil), p.logic...)
	outputs := make(map[string]string, len(p.outputs))
	for k, v := range p.outputs {
		outputs[k] = v
	}
	actuators := make(map[string]*Actuator, len(p.actuators))
	for k, v := range p.actuators {
		actuators[k] = v
	}
	regs := p.regs
	p.scans++
	p.mu.Unlock()

	// 1. Input scan.
	for _, s := range sensors {
		v, ok := s.Read(elapsed)
		regs.Set(s.Name, v, ok)
	}
	// 2. Program scan.
	for _, fn := range logic {
		fn(regs, elapsed)
	}
	// 3. Output scan.
	now := time.Now()
	for register, actName := range outputs {
		if v, valid, exists := regs.Get(register); exists && valid {
			if a := actuators[actName]; a != nil {
				a.Command(v)
				a.Step(now)
			}
		}
	}
}

// Stop halts the scan cycle.
func (p *PLC) Stop() {
	p.mu.Lock()
	if !p.run {
		p.mu.Unlock()
		return
	}
	p.run = false
	stop, done := p.stop, p.done
	p.mu.Unlock()
	p.once.Do(func() { close(stop) })
	<-done
}

// Fail injects a PLC hardware failure: scans cease and polls error.
func (p *PLC) Fail() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failed = true
}

// Repair clears the failure.
func (p *PLC) Repair() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failed = false
}

// Failed reports the failure flag.
func (p *PLC) Failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// Scans reports completed scan cycles.
func (p *PLC) Scans() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scans
}

// WriteRegister services a supervisory write (OPC -> PLC): it stores the
// value and, for output registers, commands the actuator on the next scan.
func (p *PLC) WriteRegister(name string, v float64) error {
	p.mu.Lock()
	failed := p.failed
	p.mu.Unlock()
	if failed {
		return ErrPLCDown
	}
	if _, _, exists := p.regs.Get(name); !exists {
		return fmt.Errorf("%w: %q", ErrNoRegister, name)
	}
	p.regs.Set(name, v, true)
	return nil
}

// Bus is the industrial automation network link (Devicenet/Fieldbus of
// Figure 1) between a PLC and the PC-side adapter: a polled link with
// injectable latency and failure.
type Bus struct {
	mu      sync.Mutex
	latency time.Duration
	down    bool
	polls   int64
}

// NewBus creates a healthy link.
func NewBus(latency time.Duration) *Bus {
	return &Bus{latency: latency}
}

// Poll fetches the PLC's register snapshot across the link.
func (b *Bus) Poll(p *PLC) (map[string]float64, map[string]bool, error) {
	b.mu.Lock()
	down := b.down
	latency := b.latency
	b.polls++
	b.mu.Unlock()
	if down {
		return nil, nil, ErrBusDown
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	if p.Failed() {
		return nil, nil, ErrPLCDown
	}
	regs := p.Registers()
	vals := regs.Snapshot()
	valid := make(map[string]bool, len(vals))
	for name := range vals {
		_, ok, _ := regs.Get(name)
		valid[name] = ok
	}
	return vals, valid, nil
}

// Write sends a register write across the link.
func (b *Bus) Write(p *PLC, name string, v float64) error {
	b.mu.Lock()
	down := b.down
	latency := b.latency
	b.mu.Unlock()
	if down {
		return ErrBusDown
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	return p.WriteRegister(name, v)
}

// Sever takes the link down.
func (b *Bus) Sever() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = true
}

// Restore brings the link back.
func (b *Bus) Restore() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = false
}

// Polls reports how many polls the link has carried.
func (b *Bus) Polls() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.polls
}

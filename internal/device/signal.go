// Package device simulates the plant floor of Figure 1: sensors and
// actuators wired to PLCs over an industrial automation network, with the
// PLC running a scan cycle and an adapter exposing its register file
// through an OPC server. It provides the field-data workload for every
// experiment and the device-failure modes (sensor stuck, PLC dead, bus
// down) that surface as OPC quality transitions.
package device

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Signal produces a process value as a function of elapsed time. Stateful
// signals (random walk) advance on each call.
type Signal interface {
	Sample(elapsed time.Duration) float64
}

// Sine is a sinusoidal process variable (temperatures, levels).
type Sine struct {
	Amplitude float64
	Period    time.Duration
	Offset    float64
	Phase     float64 // radians
}

// Sample implements Signal.
func (s Sine) Sample(elapsed time.Duration) float64 {
	if s.Period <= 0 {
		return s.Offset
	}
	w := 2 * math.Pi * float64(elapsed) / float64(s.Period)
	return s.Offset + s.Amplitude*math.Sin(w+s.Phase)
}

// Ramp rises at Slope per second, wrapping at WrapAt (conveyor positions,
// totalizers).
type Ramp struct {
	Slope  float64 // units per second
	Offset float64
	WrapAt float64 // 0 disables wrapping
}

// Sample implements Signal.
func (r Ramp) Sample(elapsed time.Duration) float64 {
	v := r.Offset + r.Slope*elapsed.Seconds()
	if r.WrapAt > 0 {
		v = math.Mod(v, r.WrapAt)
	}
	return v
}

// Square alternates between Low and High (pump on/off, limit switches).
type Square struct {
	Low, High float64
	Period    time.Duration
	Duty      float64 // fraction of period at High; default 0.5
}

// Sample implements Signal.
func (s Square) Sample(elapsed time.Duration) float64 {
	if s.Period <= 0 {
		return s.Low
	}
	duty := s.Duty
	if duty <= 0 || duty >= 1 {
		duty = 0.5
	}
	phase := math.Mod(float64(elapsed), float64(s.Period)) / float64(s.Period)
	if phase < duty {
		return s.High
	}
	return s.Low
}

// Constant is a fixed value.
type Constant float64

// Sample implements Signal.
func (c Constant) Sample(time.Duration) float64 { return float64(c) }

// RandomWalk drifts by ±Step per sample, clamped to [Min, Max]. It is
// stateful and safe for concurrent sampling.
type RandomWalk struct {
	Step     float64
	Min, Max float64

	mu    sync.Mutex
	value float64
	rng   *rand.Rand
	init  bool
}

// NewRandomWalk creates a seeded walk starting at start.
func NewRandomWalk(start, step, min, max float64, seed int64) *RandomWalk {
	return &RandomWalk{
		Step:  step,
		Min:   min,
		Max:   max,
		value: start,
		rng:   rand.New(rand.NewSource(seed)),
		init:  true,
	}
}

// Sample implements Signal.
func (w *RandomWalk) Sample(time.Duration) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.init {
		w.rng = rand.New(rand.NewSource(1))
		w.init = true
	}
	w.value += (w.rng.Float64()*2 - 1) * w.Step
	if w.value < w.Min {
		w.value = w.Min
	}
	if w.Max > w.Min && w.value > w.Max {
		w.value = w.Max
	}
	return w.value
}

// Sensor binds a signal to a named field input, adding measurement noise
// and two injectable faults: stuck-at and dead (no reading).
type Sensor struct {
	Name string

	mu      sync.Mutex
	sig     Signal
	noise   float64
	rng     *rand.Rand
	stuck   bool
	stuckAt float64
	dead    bool
}

// NewSensor creates a sensor with Gaussian-ish (uniform) noise amplitude.
func NewSensor(name string, sig Signal, noise float64, seed int64) *Sensor {
	return &Sensor{
		Name:  name,
		sig:   sig,
		noise: noise,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Read samples the sensor. ok is false when the sensor is dead.
func (s *Sensor) Read(elapsed time.Duration) (value float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return 0, false
	}
	if s.stuck {
		return s.stuckAt, true
	}
	v := s.sig.Sample(elapsed)
	if s.noise > 0 {
		v += (s.rng.Float64()*2 - 1) * s.noise
	}
	return v, true
}

// StickAt freezes the sensor's output (a classic field failure).
func (s *Sensor) StickAt(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stuck, s.stuckAt = true, v
}

// Kill makes the sensor return no reading.
func (s *Sensor) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = true
}

// Repair clears all sensor faults.
func (s *Sensor) Repair() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stuck, s.dead = false, false
}

// Actuator is a named field output with slew-rate limiting.
type Actuator struct {
	Name string

	mu       sync.Mutex
	target   float64
	position float64
	slewPerS float64 // 0 = instantaneous
	lastStep time.Time
	commands int64
}

// NewActuator creates an actuator; slewPerSecond 0 means instant moves.
func NewActuator(name string, slewPerSecond float64) *Actuator {
	return &Actuator{Name: name, slewPerS: slewPerSecond, lastStep: time.Now()}
}

// Command sets the actuator's target (the PLC output write).
func (a *Actuator) Command(v float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.target = v
	a.commands++
	if a.slewPerS <= 0 {
		a.position = v
	}
}

// Step advances the slew simulation and returns the current position.
func (a *Actuator) Step(now time.Time) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.slewPerS > 0 {
		dt := now.Sub(a.lastStep).Seconds()
		maxMove := a.slewPerS * dt
		delta := a.target - a.position
		switch {
		case delta > maxMove:
			a.position += maxMove
		case delta < -maxMove:
			a.position -= maxMove
		default:
			a.position = a.target
		}
	}
	a.lastStep = now
	return a.position
}

// Position returns the current position without advancing the simulation.
func (a *Actuator) Position() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.position
}

// Commands reports how many Command calls the actuator has received.
func (a *Actuator) Commands() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.commands
}

package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/opc"
)

// OPCAdapter is the device driver half of an OPC server (the paper's
// "OPC Server App (device interface)" in Figure 2): it polls a PLC over
// the field bus and publishes every register as an OPC item named
// "<plc>.<register>", and forwards OPC writes back to the PLC.
//
// Field failures surface as OPC quality: a dead sensor yields
// UncertainLastUsable on its item, a severed bus yields BadCommFailure on
// all items, a failed PLC yields BadDeviceFailure.
type OPCAdapter struct {
	plc    *PLC
	bus    *Bus
	server *opc.Server
	period time.Duration

	mu    sync.Mutex
	run   bool
	polls int64
	fails int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewOPCAdapter wires a PLC (over bus) into server, defining one OPC item
// per existing PLC register. Registers added later are not tracked.
func NewOPCAdapter(plc *PLC, bus *Bus, server *opc.Server, period time.Duration) (*OPCAdapter, error) {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	a := &OPCAdapter{plc: plc, bus: bus, server: server, period: period}
	for _, reg := range plc.Registers().Names() {
		tag := plc.Name() + "." + reg
		err := server.AddItem(opc.ItemDef{
			Tag:           tag,
			CanonicalType: opc.VTFloat64,
			Rights:        opc.AccessReadWrite,
			Description:   fmt.Sprintf("PLC %s register %s", plc.Name(), reg),
		})
		if err != nil {
			return nil, fmt.Errorf("device: define %s: %w", tag, err)
		}
	}
	server.RouteWrites(plc.Name()+".", a.handleWrite)
	return a, nil
}

// handleWrite forwards OPC client writes to the PLC register.
func (a *OPCAdapter) handleWrite(tag string, v opc.Variant) error {
	prefix := a.plc.Name() + "."
	if len(tag) <= len(prefix) || tag[:len(prefix)] != prefix {
		return fmt.Errorf("%w: %q not on PLC %s", ErrNoRegister, tag, a.plc.Name())
	}
	f, err := v.AsFloat()
	if err != nil {
		return err
	}
	return a.bus.Write(a.plc, tag[len(prefix):], f)
}

// Start launches the poll loop.
func (a *OPCAdapter) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.run {
		return
	}
	a.run = true
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	a.once = sync.Once{}
	go a.pollLoop(a.stop, a.done)
}

func (a *OPCAdapter) pollLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(a.period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			a.PollOnce()
		case <-stop:
			return
		}
	}
}

// PollOnce performs one bus poll and namespace update.
func (a *OPCAdapter) PollOnce() {
	vals, valid, err := a.bus.Poll(a.plc)
	a.mu.Lock()
	a.polls++
	if err != nil {
		a.fails++
	}
	a.mu.Unlock()

	now := time.Now()
	if err != nil {
		switch {
		case errors.Is(err, ErrBusDown):
			a.server.MarkAllQuality(opc.BadCommFailure)
		case errors.Is(err, ErrPLCDown):
			a.server.MarkAllQuality(opc.BadDeviceFailure)
		default:
			a.server.MarkAllQuality(opc.BadNonSpecific)
		}
		return
	}
	for reg, v := range vals {
		tag := a.plc.Name() + "." + reg
		q := opc.GoodNonSpecific
		if !valid[reg] {
			q = opc.UncertainLastUsable
		}
		_ = a.server.SetValue(tag, opc.VR8(v), q, now)
	}
}

// Stop halts the poll loop.
func (a *OPCAdapter) Stop() {
	a.mu.Lock()
	if !a.run {
		a.mu.Unlock()
		return
	}
	a.run = false
	stop, done := a.stop, a.done
	a.mu.Unlock()
	a.once.Do(func() { close(stop) })
	<-done
}

// Stats reports (polls, failed polls).
func (a *OPCAdapter) Stats() (polls, fails int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.polls, a.fails
}

package device

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/opc"
)

func TestSineSignal(t *testing.T) {
	s := Sine{Amplitude: 10, Period: time.Second, Offset: 50}
	if got := s.Sample(0); math.Abs(got-50) > 1e-9 {
		t.Fatalf("t=0: %v", got)
	}
	if got := s.Sample(250 * time.Millisecond); math.Abs(got-60) > 1e-9 {
		t.Fatalf("t=T/4: %v", got)
	}
	if got := s.Sample(750 * time.Millisecond); math.Abs(got-40) > 1e-9 {
		t.Fatalf("t=3T/4: %v", got)
	}
}

func TestRampSignal(t *testing.T) {
	r := Ramp{Slope: 2, Offset: 1}
	if got := r.Sample(3 * time.Second); got != 7 {
		t.Fatalf("ramp: %v", got)
	}
	wrapped := Ramp{Slope: 1, WrapAt: 5}
	if got := wrapped.Sample(7 * time.Second); got != 2 {
		t.Fatalf("wrapped ramp: %v", got)
	}
}

func TestSquareSignal(t *testing.T) {
	s := Square{Low: 0, High: 1, Period: time.Second, Duty: 0.25}
	if got := s.Sample(100 * time.Millisecond); got != 1 {
		t.Fatalf("high phase: %v", got)
	}
	if got := s.Sample(500 * time.Millisecond); got != 0 {
		t.Fatalf("low phase: %v", got)
	}
}

func TestRandomWalkBounds(t *testing.T) {
	w := NewRandomWalk(50, 5, 0, 100, 7)
	for i := 0; i < 1000; i++ {
		v := w.Sample(0)
		if v < 0 || v > 100 {
			t.Fatalf("walk escaped bounds: %v", v)
		}
	}
}

// Property: sine stays within offset±amplitude; ramp wrap stays in range.
func TestQuickSignalBounds(t *testing.T) {
	f := func(ms uint16) bool {
		elapsed := time.Duration(ms) * time.Millisecond
		s := Sine{Amplitude: 5, Period: 700 * time.Millisecond, Offset: 20}
		v := s.Sample(elapsed)
		if v < 15-1e-9 || v > 25+1e-9 {
			return false
		}
		r := Ramp{Slope: 3, WrapAt: 10}
		rv := r.Sample(elapsed)
		return rv >= 0 && rv < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSensorFaults(t *testing.T) {
	s := NewSensor("temp", Constant(42), 0, 1)
	v, ok := s.Read(0)
	if !ok || v != 42 {
		t.Fatalf("healthy read: %v %v", v, ok)
	}
	s.StickAt(99)
	if v, ok := s.Read(0); !ok || v != 99 {
		t.Fatalf("stuck read: %v %v", v, ok)
	}
	s.Kill()
	if _, ok := s.Read(0); ok {
		t.Fatal("dead sensor returned a reading")
	}
	s.Repair()
	if v, ok := s.Read(0); !ok || v != 42 {
		t.Fatalf("repaired read: %v %v", v, ok)
	}
}

func TestSensorNoise(t *testing.T) {
	s := NewSensor("temp", Constant(10), 0.5, 3)
	for i := 0; i < 100; i++ {
		v, _ := s.Read(0)
		if v < 9.5 || v > 10.5 {
			t.Fatalf("noise out of band: %v", v)
		}
	}
}

func TestActuatorSlew(t *testing.T) {
	a := NewActuator("valve", 10) // 10 units/s
	a.Command(100)
	now := time.Now()
	pos := a.Step(now.Add(time.Second))
	if pos < 5 || pos > 15 {
		t.Fatalf("slew after 1s: %v (want ~10)", pos)
	}
	instant := NewActuator("relay", 0)
	instant.Command(1)
	if instant.Position() != 1 {
		t.Fatalf("instant actuator at %v", instant.Position())
	}
}

func buildTankPLC(t *testing.T) (*PLC, *Sensor, *Actuator) {
	t.Helper()
	plc := NewPLC("plc1", 10*time.Millisecond)
	level := NewSensor("level", Constant(80), 0, 1)
	pump := NewActuator("pump", 0)
	plc.AttachSensor(level)
	plc.AttachActuator("pump_cmd", pump)
	// Rung: run the pump when level > 75.
	plc.AddLogic(func(regs *Registers, _ time.Duration) {
		lv, valid, _ := regs.Get("level")
		cmd := 0.0
		if valid && lv > 75 {
			cmd = 1.0
		}
		regs.Set("pump_cmd", cmd, true)
	})
	return plc, level, pump
}

func TestPLCScanCycle(t *testing.T) {
	plc, level, pump := buildTankPLC(t)
	plc.ScanOnce()
	if pump.Position() != 1 {
		t.Fatalf("pump should run at level 80: %v", pump.Position())
	}
	level.StickAt(50)
	plc.ScanOnce()
	if pump.Position() != 0 {
		t.Fatalf("pump should stop at level 50: %v", pump.Position())
	}
	if plc.Scans() != 2 {
		t.Fatalf("scans = %d", plc.Scans())
	}
}

func TestPLCStartStop(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	plc.Start()
	time.Sleep(50 * time.Millisecond)
	plc.Stop()
	if plc.Scans() == 0 {
		t.Fatal("no scans while running")
	}
	count := plc.Scans()
	time.Sleep(30 * time.Millisecond)
	if plc.Scans() != count {
		t.Fatal("scans continued after Stop")
	}
}

func TestPLCFailStopsScans(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	plc.Fail()
	plc.ScanOnce()
	if plc.Scans() != 0 {
		t.Fatal("failed PLC scanned")
	}
	plc.Repair()
	plc.ScanOnce()
	if plc.Scans() != 1 {
		t.Fatal("repaired PLC did not scan")
	}
}

func TestWriteRegister(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	if err := plc.WriteRegister("pump_cmd", 1); err != nil {
		t.Fatal(err)
	}
	if err := plc.WriteRegister("nope", 1); !errors.Is(err, ErrNoRegister) {
		t.Fatalf("got %v", err)
	}
	plc.Fail()
	if err := plc.WriteRegister("pump_cmd", 0); !errors.Is(err, ErrPLCDown) {
		t.Fatalf("got %v", err)
	}
}

func TestBusPollAndFaults(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	plc.ScanOnce()
	bus := NewBus(0)

	vals, valid, err := bus.Poll(plc)
	if err != nil {
		t.Fatal(err)
	}
	if vals["level"] != 80 || !valid["level"] {
		t.Fatalf("poll: %v %v", vals, valid)
	}

	bus.Sever()
	if _, _, err := bus.Poll(plc); !errors.Is(err, ErrBusDown) {
		t.Fatalf("severed poll: %v", err)
	}
	if err := bus.Write(plc, "pump_cmd", 1); !errors.Is(err, ErrBusDown) {
		t.Fatalf("severed write: %v", err)
	}
	bus.Restore()
	plc.Fail()
	if _, _, err := bus.Poll(plc); !errors.Is(err, ErrPLCDown) {
		t.Fatalf("dead PLC poll: %v", err)
	}
}

func TestOPCAdapterPublishesRegisters(t *testing.T) {
	plc, level, _ := buildTankPLC(t)
	plc.ScanOnce()
	bus := NewBus(0)
	server := opc.NewServer("Plant.OPC.1")
	a, err := NewOPCAdapter(plc, bus, server, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	a.PollOnce()
	states, err := server.Read([]string{"plc1.level", "plc1.pump_cmd"})
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := states[0].Value.AsFloat(); f != 80 {
		t.Fatalf("level item: %v", f)
	}
	if !states[0].Quality.IsGood() {
		t.Fatalf("quality: %v", states[0].Quality)
	}

	// Dead sensor -> uncertain quality on its item.
	level.Kill()
	plc.ScanOnce()
	a.PollOnce()
	states, _ = server.Read([]string{"plc1.level"})
	if states[0].Quality != opc.UncertainLastUsable {
		t.Fatalf("dead-sensor quality: %v", states[0].Quality)
	}
}

func TestOPCAdapterQualityOnBusAndPLCFailure(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	plc.ScanOnce()
	bus := NewBus(0)
	server := opc.NewServer("Plant.OPC.1")
	a, err := NewOPCAdapter(plc, bus, server, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a.PollOnce()

	bus.Sever()
	a.PollOnce()
	states, _ := server.Read([]string{"plc1.level"})
	if states[0].Quality != opc.BadCommFailure {
		t.Fatalf("bus-down quality: %v", states[0].Quality)
	}

	bus.Restore()
	plc.Fail()
	a.PollOnce()
	states, _ = server.Read([]string{"plc1.level"})
	if states[0].Quality != opc.BadDeviceFailure {
		t.Fatalf("plc-down quality: %v", states[0].Quality)
	}

	plc.Repair()
	a.PollOnce()
	states, _ = server.Read([]string{"plc1.level"})
	if !states[0].Quality.IsGood() {
		t.Fatalf("recovered quality: %v", states[0].Quality)
	}
	_, fails := a.Stats()
	if fails != 2 {
		t.Fatalf("fails = %d", fails)
	}
}

func TestOPCWriteReachesPLC(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	bus := NewBus(0)
	server := opc.NewServer("Plant.OPC.1")
	if _, err := NewOPCAdapter(plc, bus, server, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := server.Write("plc1.pump_cmd", opc.VR8(1)); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := plc.Registers().Get("pump_cmd"); v != 1 {
		t.Fatalf("register = %v", v)
	}
}

func TestOPCAdapterLoop(t *testing.T) {
	plc, _, _ := buildTankPLC(t)
	plc.Start()
	defer plc.Stop()
	bus := NewBus(0)
	server := opc.NewServer("Plant.OPC.1")
	a, err := NewOPCAdapter(plc, bus, server, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	defer a.Stop()
	time.Sleep(60 * time.Millisecond)
	polls, _ := a.Stats()
	if polls < 5 {
		t.Fatalf("only %d polls", polls)
	}
	states, err := server.Read([]string{"plc1.level"})
	if err != nil || !states[0].Quality.IsGood() {
		t.Fatalf("live item: %+v %v", states, err)
	}
}

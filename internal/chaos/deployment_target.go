package chaos

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// deploymentTarget drives a campaign against an in-process core.Deployment
// on netsim — the classic (pre-e2e) campaign substrate.
type deploymentTarget struct {
	d   *core.Deployment
	led *ledger

	mu       sync.Mutex
	flappers []*netsim.Flapper

	faultsTotal     *telemetry.Counter
	violationsTotal *telemetry.Counter
}

func newDeploymentTarget(d *core.Deployment, led *ledger) *deploymentTarget {
	reg := d.Telemetry.Metrics()
	return &deploymentTarget{
		d:               d,
		led:             led,
		faultsTotal:     reg.Counter("oftt_chaos_faults_injected_total"),
		violationsTotal: reg.Counter("oftt_chaos_invariant_violations_total"),
	}
}

// resolve maps a symbolic target to a live replica, nil when inapplicable.
func (t *deploymentTarget) resolve(target string) *core.Replica {
	switch target {
	case "primary":
		return t.d.Primary()
	case "backup":
		return t.d.Backup()
	default:
		return nil
	}
}

// Inject applies one event and derives its repair. The injection-time
// resolution (the concrete node the symbolic target mapped to) is captured
// in the repair closure so the repair heals what was actually faulted.
func (t *deploymentTarget) Inject(ev Event) (func(), bool) {
	switch ev.Kind {
	case KillNode, BlueScreen, KillApp, KillEngine, HangApp, HangEngine:
		rep := t.resolve(ev.Target)
		if rep == nil {
			return nil, false
		}
		node := rep.Node.Name()
		if err := t.d.Inject(core.FaultKind(ev.Kind), node); err != nil {
			return nil, false
		}
		switch ev.Kind {
		case HangApp:
			return func() { _ = t.d.ResumeApp(node) }, true
		case HangEngine:
			return func() { _ = t.d.ResumeEngine(node) }, true
		default:
			// Kill-app needs no explicit repair (the engine's local-restart
			// provision covers it) beyond the node-health check, which is a
			// no-op when recovery already happened.
			return func() { t.repairNode(node) }, true
		}
	case Partition:
		t.d.PartitionPair()
		return t.healPair, true
	case PartitionOne:
		p, b := t.d.Primary(), t.d.Backup()
		if p == nil || b == nil {
			return nil, false
		}
		from, to := p.Node.Name(), b.Node.Name()
		if ev.Target == "backup->primary" {
			from, to = to, from
		}
		t.d.PartitionOneWay(from, to)
		return t.healPair, true
	case LinkFlap:
		fs := t.d.NewLinkFlappers(15*time.Millisecond, 15*time.Millisecond)
		for _, f := range fs {
			f.Start()
		}
		t.mu.Lock()
		t.flappers = append(t.flappers, fs...)
		t.mu.Unlock()
		return t.stopFlappers, true
	case LossBurst:
		t.d.SetLoss(ev.Param)
		return func() { t.d.SetLoss(0) }, true
	case LatencySpike:
		lat := time.Duration(ev.Param * float64(time.Millisecond))
		t.d.SetLatency(lat, lat/2)
		return func() { t.d.SetLatency(0, 0) }, true
	case CkptInterrupt:
		rep := t.d.Primary() // the primary ships checkpoints
		if rep == nil {
			return nil, false
		}
		if err := t.d.InterruptCheckpointTransfer(rep.Node.Name()); err != nil {
			return nil, false
		}
		return nil, true // instantaneous; nothing to repair
	default:
		return nil, false
	}
}

func (t *deploymentTarget) healPair() {
	names := t.d.NodeNames()
	for _, n := range t.d.Nets {
		n.HealPrefix(names[0]+":", names[1]+":")
	}
}

func (t *deploymentTarget) stopFlappers() {
	t.mu.Lock()
	fs := t.flappers
	t.flappers = nil
	t.mu.Unlock()
	for _, f := range fs {
		f.Stop()
	}
}

// repairNode brings one node back to full health: reboot a dead machine,
// power-cycle a live one whose engine or application process died (the
// clean-rejoin pattern — a half-dead node re-enters as a fresh backup).
// A no-op when the replica is healthy, so it is safe to call after faults
// the engine already recovered from.
func (t *deploymentTarget) repairNode(name string) {
	rep := t.d.Replica(name)
	if rep == nil {
		return
	}
	if rep.Node.State() != cluster.NodeUp {
		_ = t.d.RestartNode(name)
		return
	}
	if !rep.Healthy() {
		rep.Node.PowerOff()
		_ = t.d.RestartNode(name)
	}
}

func (t *deploymentTarget) Quiesce() {
	t.stopFlappers()
	t.d.HealNetworks() // heals links and clears loss/latency
	for _, name := range t.d.NodeNames() {
		_ = t.d.ResumeApp(name)
		_ = t.d.ResumeEngine(name)
	}
	for _, name := range t.d.NodeNames() {
		t.repairNode(name)
	}
}

func (t *deploymentTarget) Primaries() int {
	n := 0
	for _, rep := range t.d.Replicas() {
		if rep.Engine.Role() == engine.RolePrimary {
			n++
		}
	}
	return n
}

func (t *deploymentTarget) PrimaryReady() bool {
	if t.Primaries() != 1 {
		return false
	}
	p := t.d.Primary()
	return p != nil && p.AppActive()
}

func (t *deploymentTarget) PrimarySeq() (int64, bool) {
	if t.Primaries() != 1 {
		return 0, false
	}
	p := t.d.Primary()
	if p == nil || !p.AppActive() {
		return 0, false
	}
	probe, _ := p.CurrentApp().(*Probe)
	if probe == nil {
		return 0, false
	}
	seq := probe.Seq()
	if seq < 0 {
		return 0, false
	}
	return seq, true
}

// StartTraffic feeds the diverter a steady message stream.
func (t *deploymentTarget) StartTraffic(every time.Duration) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		n := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n++
				_, _ = t.d.Send([]byte("chaos-" + strconv.Itoa(n)))
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

func (t *deploymentTarget) DrainAndAudit(timeout time.Duration) []Violation {
	t.d.Div.Drain("app", timeout)
	return t.led.audit()
}

func (t *deploymentTarget) TrafficCounts() (int64, int64, int64) {
	st := t.d.Div.Stats()
	return st.Enqueued, st.Delivered, st.Dropped
}

func (t *deploymentTarget) WorstRecovery() time.Duration {
	var worst time.Duration
	for _, tr := range t.d.Telemetry.Tracer().Traces() {
		if d := tr.Duration(); d > worst {
			worst = d
		}
	}
	return worst
}

func (t *deploymentTarget) NoteFault(kind Kind) {
	t.faultsTotal.Inc()
	t.d.Telemetry.Metrics().Counter(`oftt_chaos_faults_injected_total{kind="` + string(kind) + `"}`).Inc()
}

func (t *deploymentTarget) ReportVerdict(seed int64, injected, violations int) {
	t.violationsTotal.Add(int64(violations))
	verdict := "pass"
	if violations > 0 {
		verdict = "fail"
	}
	t.d.Telemetry.ReportStatus(telemetry.Status{
		Node:      "testpc",
		Component: "chaos-campaign",
		Kind:      telemetry.KindChaos,
		State:     verdict,
		Detail:    fmtVerdict(seed, injected, violations),
		UpdatedAt: time.Now(),
	})
}

var _ Target = (*deploymentTarget)(nil)

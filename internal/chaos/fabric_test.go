package chaos

import (
	"testing"
	"time"
)

// TestFabricCampaignFixedSeed is the 3-replica fabric gate: a fixed-seed
// campaign over a dozen lease-elected groups on a shared 5-node pool.
// Runs under -short, so `make chaos` exercises the quorum path on every
// verify.
func TestFabricCampaignFixedSeed(t *testing.T) {
	res, err := RunFabric(FabricConfig{
		Seed:     42,
		Nodes:    5,
		Groups:   12,
		Replicas: 3,
		Rounds:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("campaign injected no faults")
	}
	if !res.Passed() {
		t.Fatalf("invariant violations after %v:\n%v", res.Faults, res.Violations)
	}
	if res.Sent == 0 || res.Delivered < res.Sent {
		t.Fatalf("acked loss: sent=%d delivered=%d", res.Sent, res.Delivered)
	}
	t.Logf("faults=%v sent=%d delivered=%d", res.Faults, res.Sent, res.Delivered)
}

// TestFabricCampaignPairGroups runs the same campaign over classic
// 2-replica groups (the paper's negotiate/tie-break protocol) sharing the
// pool, pinning that the pair path survives the multiplexed transport.
func TestFabricCampaignPairGroups(t *testing.T) {
	res, err := RunFabric(FabricConfig{
		Seed:     7,
		Nodes:    4,
		Groups:   8,
		Replicas: 2,
		Rounds:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("invariant violations after %v:\n%v", res.Faults, res.Violations)
	}
}

// TestFabricThousandGroups is the scaling acceptance test: a thousand
// 3-replica groups on an 8-node pool survive a seeded fault campaign with
// every group back to a single live primary and no acknowledged message
// lost. Heavy (3000 engines), so it runs in the full suite only.
func TestFabricThousandGroups(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy scaling test; run without -short")
	}
	res, err := RunFabric(FabricConfig{
		Seed:         424242,
		Nodes:        8,
		Groups:       1000,
		Replicas:     3,
		BeatInterval: 20 * time.Millisecond,
		Rounds:       4,
		Dwell:        150 * time.Millisecond,
		Settle:       100 * time.Millisecond,
		SampleGroups: 16,
		MessageEvery: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("campaign injected no faults")
	}
	if !res.Passed() {
		max := len(res.Violations)
		if max > 10 {
			max = 10
		}
		t.Fatalf("invariant violations after %v (showing %d/%d):\n%v",
			res.Faults, max, len(res.Violations), res.Violations[:max])
	}
	if res.Sent == 0 || res.Delivered < res.Sent {
		t.Fatalf("acked loss: sent=%d delivered=%d", res.Sent, res.Delivered)
	}
	t.Logf("groups=%d faults=%v sent=%d delivered=%d",
		res.Groups, res.Faults, res.Sent, res.Delivered)
}

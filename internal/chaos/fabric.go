package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
)

// FabricConfig parameterizes a multi-group campaign: seeded faults over a
// core.Fabric hosting many FT groups on a shared node pool, with the
// per-group analogs of the pair campaign's invariants — every group
// eventually settles on a single live primary, and no message the fabric
// diverter accepted is lost.
type FabricConfig struct {
	// Seed drives the fabric simulation and the fault schedule.
	Seed int64
	// Nodes is the shared pool size (default 5).
	Nodes int
	// Groups is how many FT groups to schedule (default 12).
	Groups int
	// Replicas is the member count per group (default 3 — the
	// lease/quorum election path).
	Replicas int
	// BeatInterval overrides the fabric beat period (default: fabric
	// default). Large campaigns raise it to bound mux traffic.
	BeatInterval time.Duration
	// Rounds is how many fault/repair cycles to run (default 8).
	Rounds int
	// Dwell holds each fault before repairing it (default 60ms).
	Dwell time.Duration
	// Settle rests between a repair and the next fault (default 40ms).
	Settle time.Duration
	// SampleGroups is how many groups receive diverter traffic for the
	// no-acked-loss audit (default min(Groups, 8)).
	SampleGroups int
	// MessageEvery is the send period across the sampled groups
	// (default 3ms).
	MessageEvery time.Duration
	// QuiesceTimeout bounds the post-campaign wait for every group to
	// settle (default 10s).
	QuiesceTimeout time.Duration
	// DrainBound bounds the final per-group diverter drain (default 5s).
	DrainBound time.Duration
	// OPCSubscribers, when positive, runs the OPC data-plane probe
	// alongside the faults: that many subscriptions on the new Subscribe
	// surface consume a sequence feed and bridge sentinel observations
	// into the sampled groups, and after the final heal every one of them
	// must observe a closing sentinel (InvOPCContinuity).
	OPCSubscribers int
}

func (c *FabricConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Nodes <= 0 {
		c.Nodes = 5
	}
	if c.Groups <= 0 {
		c.Groups = 12
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 8
	}
	if c.Dwell <= 0 {
		c.Dwell = 60 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 40 * time.Millisecond
	}
	if c.SampleGroups <= 0 || c.SampleGroups > c.Groups {
		c.SampleGroups = c.Groups
		if c.SampleGroups > 8 {
			c.SampleGroups = 8
		}
	}
	if c.MessageEvery <= 0 {
		c.MessageEvery = 3 * time.Millisecond
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 10 * time.Second
	}
	if c.DrainBound <= 0 {
		c.DrainBound = 5 * time.Second
	}
}

// FabricResult is one fabric campaign's outcome.
type FabricResult struct {
	Seed       int64
	Groups     int
	Faults     []string // executed fault log, in order
	Sent       int64
	Delivered  int64
	// OPCDelivered counts per-subscription OPC update deliveries made by
	// the data-plane probe (0 when the probe is off).
	OPCDelivered int64
	Violations   []Violation
}

// Passed reports whether every invariant held.
func (r *FabricResult) Passed() bool { return len(r.Violations) == 0 }

// fabricFault is one round's injected failure plus its repair.
type fabricFault struct {
	desc   string
	repair func() error
}

// RunFabric executes one seeded multi-group campaign. Faults are injected
// one round at a time — inject, dwell, repair, settle — drawn from node
// kills, blue screens, member-engine kills and hangs, pairwise partitions,
// and full node isolation. Node faults deliberately hit every group
// colocated on the victim; that sharing is the fabric's point.
func RunFabric(cfg FabricConfig) (*FabricResult, error) {
	cfg.applyDefaults()
	led := newLedger()
	f, err := core.NewFabric(core.FabricConfig{
		NodeCount:    cfg.Nodes,
		Seed:         cfg.Seed,
		BeatInterval: cfg.BeatInterval,
		Ledger:       led,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build fabric: %w", err)
	}
	defer f.Shutdown(context.Background())

	groups := make([]*core.Group, 0, cfg.Groups)
	for i := 0; i < cfg.Groups; i++ {
		g, err := f.AddGroup(core.GroupSpec{Replicas: cfg.Replicas})
		if err != nil {
			return nil, fmt.Errorf("chaos: add group %d: %w", i, err)
		}
		groups = append(groups, g)
	}
	res := &FabricResult{Seed: cfg.Seed, Groups: cfg.Groups}
	if vs := awaitGroupsSettled(f, groups, cfg.QuiesceTimeout); len(vs) > 0 {
		res.Violations = append(res.Violations,
			Violation{Invariant: InvSinglePrimary, Detail: "groups never formed: " + vs[0].Detail})
		return res, nil
	}

	// Diverter traffic across the sampled groups.
	var sent atomic.Int64
	sample := groups[:cfg.SampleGroups]
	senderStop := make(chan struct{})
	senderDone := make(chan struct{})
	go func() {
		defer close(senderDone)
		t := time.NewTicker(cfg.MessageEvery)
		defer t.Stop()
		n := 0
		for {
			select {
			case <-senderStop:
				return
			case <-t.C:
				n++
				g := sample[n%len(sample)]
				if _, err := g.Send([]byte("chaos-" + strconv.Itoa(n))); err == nil {
					sent.Add(1)
				}
			}
		}
	}()

	// OPC data-plane probe: subscriptions consuming a sequence feed while
	// the faults run, bridging into the sampled groups.
	var probe *opcProbe
	if cfg.OPCSubscribers > 0 {
		var perr error
		probe, perr = startOPCProbe(cfg.OPCSubscribers, cfg.MessageEvery, sample, &sent)
		if perr != nil {
			close(senderStop)
			<-senderDone
			return nil, fmt.Errorf("chaos: start opc probe: %w", perr)
		}
	}

	// One fault at a time: inject, dwell, repair, settle. Single
	// goroutine, so fabric mutations never race each other.
	rng := rand.New(rand.NewSource(cfg.Seed))
	for round := 0; round < cfg.Rounds; round++ {
		fault := injectFabricFault(f, groups, rng)
		if fault == nil {
			continue
		}
		res.Faults = append(res.Faults, fault.desc)
		time.Sleep(cfg.Dwell)
		if err := fault.repair(); err != nil {
			res.Violations = append(res.Violations, Violation{
				Invariant: InvRecoveryBound,
				Detail:    fmt.Sprintf("repair of %s failed: %v", fault.desc, err),
			})
			break
		}
		time.Sleep(cfg.Settle)
	}

	// Final heal: clear partitions, revive any node a repair left down.
	f.HealNetworks()
	for _, name := range f.NodeNames() {
		if n := f.Node(name); n != nil && n.State() != cluster.NodeUp {
			if err := f.RestartNode(name); err != nil {
				res.Violations = append(res.Violations, Violation{
					Invariant: InvRecoveryBound,
					Detail:    fmt.Sprintf("final restart of %s failed: %v", name, err),
				})
			}
		}
	}

	// Invariant: every group settles back to one live primary.
	res.Violations = append(res.Violations, awaitGroupsSettled(f, groups, cfg.QuiesceTimeout)...)

	close(senderStop)
	<-senderDone

	// Invariant: every OPC subscription observes the closing sentinel.
	if probe != nil {
		res.Violations = append(res.Violations, probe.finish(cfg.DrainBound)...)
		res.OPCDelivered = probe.delivered.Load()
		probe.close()
	}

	// Invariant: every accepted message lands once the cluster is healthy.
	for _, g := range sample {
		if !f.Div.Drain(g.ID(), cfg.DrainBound) {
			res.Violations = append(res.Violations, Violation{
				Invariant: InvNoAckedLoss,
				Detail:    fmt.Sprintf("group %s did not drain within %v", g.ID(), cfg.DrainBound),
			})
		}
	}
	res.Violations = append(res.Violations, led.audit()...)

	res.Sent = sent.Load()
	for _, g := range sample {
		res.Delivered += g.Delivered()
	}
	return res, nil
}

// injectFabricFault picks and applies one fault; nil when the draw found
// no applicable target (e.g. no up node to kill).
func injectFabricFault(f *core.Fabric, groups []*core.Group, rng *rand.Rand) *fabricFault {
	names := f.NodeNames()
	up := func() []string {
		var out []string
		for _, n := range names {
			if node := f.Node(n); node != nil && node.State() == cluster.NodeUp {
				out = append(out, n)
			}
		}
		return out
	}
	// groupOn finds a random group with a member on the node.
	groupOn := func(node string) *core.Group {
		var hosted []*core.Group
		for _, g := range groups {
			for _, n := range g.MemberNodes() {
				if n == node {
					hosted = append(hosted, g)
					break
				}
			}
		}
		if len(hosted) == 0 {
			return nil
		}
		return hosted[rng.Intn(len(hosted))]
	}

	live := up()
	if len(live) < 2 {
		return nil
	}
	victim := live[rng.Intn(len(live))]
	switch rng.Intn(6) {
	case 0: // node power-off
		f.Node(victim).PowerOff()
		return &fabricFault{
			desc:   "kill-node " + victim,
			repair: func() error { return f.RestartNode(victim) },
		}
	case 1: // NT crash
		f.Node(victim).BlueScreen()
		return &fabricFault{
			desc:   "bluescreen " + victim,
			repair: func() error { return f.RestartNode(victim) },
		}
	case 2: // member engine killed
		g := groupOn(victim)
		if g == nil {
			return nil
		}
		if err := g.Inject(core.FaultKillEngine, victim); err != nil {
			return nil
		}
		return &fabricFault{
			desc:   fmt.Sprintf("kill-engine %s@%s", g.ID(), victim),
			repair: func() error { return g.RestartMember(victim) },
		}
	case 3: // member engine hung
		g := groupOn(victim)
		if g == nil {
			return nil
		}
		if err := g.Inject(core.FaultHangEngine, victim); err != nil {
			return nil
		}
		return &fabricFault{
			desc:   fmt.Sprintf("hang-engine %s@%s", g.ID(), victim),
			repair: func() error { return g.ResumeEngine(victim) },
		}
	case 4: // pairwise partition
		other := live[rng.Intn(len(live))]
		if other == victim {
			return nil
		}
		f.Partition(victim, other)
		return &fabricFault{
			desc:   fmt.Sprintf("partition %s|%s", victim, other),
			repair: func() error { f.HealNetworks(); return nil },
		}
	default: // full isolation
		f.Isolate(victim)
		return &fabricFault{
			desc:   "isolate " + victim,
			repair: func() error { f.HealNetworks(); return nil },
		}
	}
}

// awaitGroupsSettled waits for every group to hold exactly one live
// primary, sharing one deadline (groups settle concurrently).
func awaitGroupsSettled(f *core.Fabric, groups []*core.Group, timeout time.Duration) []Violation {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var out []Violation
	for _, g := range groups {
		if err := g.WaitForRolesContext(ctx); err != nil {
			out = append(out, Violation{
				Invariant: InvSinglePrimary,
				Detail:    fmt.Sprintf("group %s: %v", g.ID(), err),
			})
		}
	}
	return out
}

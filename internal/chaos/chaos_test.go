package chaos

import (
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 42}
	cfg.applyDefaults()
	a := Generate(42, cfg)
	b := Generate(42, cfg)
	if a.String() != b.String() {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	c := Generate(43, cfg)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("empty schedule")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatalf("schedule not time-ordered at %d", i)
		}
	}
}

func TestCampaignReportsItsSchedule(t *testing.T) {
	cfg := Config{Seed: 7, Duration: 150 * time.Millisecond, MeanGap: 60 * time.Millisecond,
		Palette: []Kind{LossBurst}} // pure link faults: fast, no repairs
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgCopy := cfg
	cfgCopy.applyDefaults()
	want := Generate(7, cfgCopy)
	if res.Schedule.String() != want.String() {
		t.Fatalf("campaign schedule differs from regenerated schedule:\n%s\nvs\n%s",
			res.Schedule, want)
	}
	if !res.Passed() {
		t.Fatalf("loss-burst campaign failed: %v", res.Violations)
	}
}

// TestShortDeterministicCampaigns is the `make chaos` gate: fixed seeds,
// full palette, run under -race. Every invariant must hold.
func TestShortDeterministicCampaigns(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		res, err := Run(Config{
			Seed:     seed,
			Duration: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed() {
			t.Errorf("seed %d: invariants violated: %v\nschedule:\n%s",
				seed, res.Violations, res.Schedule)
		}
		if res.Injected == 0 {
			t.Errorf("seed %d: no faults injected (skipped=%d)", seed, res.Skipped)
		}
	}
}

// TestScriptedSplitBrain partitions the pair long enough for the backup
// to promote, heals, and requires the tie-break to resolve the resulting
// dual-primary — all through the scripted-campaign path.
func TestScriptedSplitBrain(t *testing.T) {
	res, err := Run(Config{
		Seed: 11,
		Script: []Event{
			{At: 50 * time.Millisecond, Kind: Partition, Dur: 150 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("split-brain campaign failed: %v", res.Violations)
	}
	if res.Injected != 1 {
		t.Fatalf("injected=%d skipped=%d", res.Injected, res.Skipped)
	}
}

// TestBrokenTieBreakIsCaught disables split-brain resolution and expects
// the eventually-single-primary checker to flag the stuck dual-primary —
// the acceptance check that a deliberately broken invariant is detected.
func TestBrokenTieBreakIsCaught(t *testing.T) {
	res, err := Run(Config{
		Seed: 13,
		Script: []Event{
			{At: 50 * time.Millisecond, Kind: Partition, Dur: 150 * time.Millisecond},
		},
		DisableTieBreak: true,
		QuiesceTimeout:  2 * time.Second, // dual-primary never resolves; fail fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("broken tie-break went undetected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == InvSinglePrimary {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected %s violation, got %v", InvSinglePrimary, res.Violations)
	}
}

// TestAsymmetricPartitionCampaign drives the one-way partition through a
// scripted campaign: only one engine loses heartbeats, the pair goes
// dual-primary during the cut, and the heal must demote exactly one side.
func TestAsymmetricPartitionCampaign(t *testing.T) {
	res, err := Run(Config{
		Seed: 17,
		Script: []Event{
			{At: 50 * time.Millisecond, Kind: PartitionOne, Target: "primary->backup", Dur: 150 * time.Millisecond},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed() {
		t.Fatalf("asymmetric-partition campaign failed: %v", res.Violations)
	}
}

// TestRandomizedCampaigns sweeps many seeds with the full palette. Long;
// skipped in -short (the `make chaos` gate runs the fixed-seed set).
func TestRandomizedCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("long randomized campaign sweep")
	}
	for seed := int64(100); seed < 106; seed++ {
		res, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Passed() {
			t.Errorf("seed %d: %v\nschedule:\n%s", seed, res.Violations, res.Schedule)
		}
	}
}

package chaos

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/diverter"
	"repro/internal/engine"
)

// Config parameterizes one campaign.
type Config struct {
	// Seed drives every random choice: the schedule, the fabric, the
	// diverter jitter. Same seed, same campaign.
	Seed int64
	// Duration is the fault-injection window (default 500ms). Quiescence
	// and invariant checking run after it.
	Duration time.Duration
	// MeanGap is the average spacing between faults (default 80ms).
	MeanGap time.Duration
	// Palette restricts which fault kinds the generator draws from
	// (default: DefaultPalette).
	Palette []Kind
	// Script, when non-empty, replaces the generated schedule entirely —
	// the scripted-campaign mode for regression replays and targeted
	// scenarios.
	Script []Event

	// FaultDurMin/FaultDurSpan bound a generated fault's active window:
	// Dur = FaultDurMin + rand(FaultDurSpan). Defaults (100ms + 200ms)
	// suit the in-process deployment; the black-box e2e harness scales
	// them up to real-process detection timescales.
	FaultDurMin  time.Duration
	FaultDurSpan time.Duration

	// QuiesceTimeout bounds post-campaign convergence to a single primary
	// (default 10s).
	QuiesceTimeout time.Duration
	// StabilityDwell is how long the converged pair is watched for a
	// dual-primary relapse (default 200ms).
	StabilityDwell time.Duration
	// RecoveryBound fails the campaign if any recovery trace runs longer
	// (default 5s).
	RecoveryBound time.Duration
	// AllowedLoss is the monotonic checker's slack in probe ticks — the
	// work a failover may legitimately lose (checkpoint window plus
	// detection time; default 250 ticks).
	AllowedLoss int64
	// MessageEvery is the diverter traffic period (default 5ms).
	MessageEvery time.Duration
	// ProbeTick is the probe counter period (default 2ms).
	ProbeTick time.Duration
	// SampleEvery is the monotonic checker's sampling period (default 5ms;
	// the e2e harness raises it, since each sample is an HTTP scrape).
	SampleEvery time.Duration
	// DrainTimeout bounds the post-campaign delivery drain (default 5s).
	DrainTimeout time.Duration

	// DisableTieBreak turns off the engines' split-brain resolution —
	// deliberately breaking the eventually-single-primary invariant to
	// prove the checker catches it.
	DisableTieBreak bool
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 80 * time.Millisecond
	}
	if c.FaultDurMin <= 0 {
		c.FaultDurMin = 100 * time.Millisecond
	}
	if c.FaultDurSpan <= 0 {
		c.FaultDurSpan = 200 * time.Millisecond
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 10 * time.Second
	}
	if c.StabilityDwell <= 0 {
		c.StabilityDwell = 200 * time.Millisecond
	}
	if c.RecoveryBound <= 0 {
		c.RecoveryBound = 5 * time.Second
	}
	if c.AllowedLoss <= 0 {
		c.AllowedLoss = 250
	}
	if c.MessageEvery <= 0 {
		c.MessageEvery = 5 * time.Millisecond
	}
	if c.ProbeTick <= 0 {
		c.ProbeTick = 2 * time.Millisecond
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 5 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
}

// Result is one campaign's outcome.
type Result struct {
	Seed     int64
	Schedule Schedule
	// Injected counts faults actually applied; Skipped counts schedule
	// entries that were inapplicable when their time came (e.g. kill-app
	// while no copy was active) — skips are not failures.
	Injected, Skipped int
	Violations        []Violation
	// WorstRecovery is the longest completed recovery trace.
	WorstRecovery time.Duration
	// Diverter accounting over the whole campaign.
	Enqueued, Delivered, Dropped int64
}

// Passed reports whether every invariant held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// runner is one campaign's mutable state, generic over the Target.
type runner struct {
	cfg Config
	t   Target

	mu         sync.Mutex
	violations []Violation
	injected   int
	skipped    int
}

// Run executes one seeded campaign against a fresh in-process deployment
// and reports the invariant verdicts. Failures reproduce from (seed,
// config) alone.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: a cancelled ctx skips the rest of
// the fault schedule, drains, and still reports a verdict (the
// graceful-shutdown path of oftt-chaos).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg.applyDefaults()
	led := newLedger()
	d, err := core.New(core.Config{
		Seed:             cfg.Seed,
		Component:        "app",
		CheckpointPeriod: 10 * time.Millisecond,
		Rule:             engine.RecoveryRule{MaxLocalRestarts: 1, Exhausted: engine.ExhaustSwitchover},
		SkipMonitor:      true,
		NewApp:           func(string) core.ReplicatedApp { return NewProbe(cfg.ProbeTick) },
		TuneDiverter: func(dc *diverter.Config) {
			dc.Ledger = led
			dc.Seed = cfg.Seed
		},
		TuneEngine: func(ec *engine.Config) {
			ec.DisableTieBreak = cfg.DisableTieBreak
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build deployment: %w", err)
	}
	defer d.Shutdown(context.Background())
	formCtx, cancelForm := context.WithTimeout(context.Background(), 5*time.Second)
	err = d.WaitForRolesContext(formCtx)
	cancelForm()
	if err != nil {
		return nil, fmt.Errorf("chaos: pair never formed: %w", err)
	}

	return RunTarget(ctx, cfg, newDeploymentTarget(d, led))
}

// RunTarget executes one seeded campaign against an already-running
// target. Cancelling ctx skips the rest of the fault schedule and proceeds
// straight to quiesce + invariant checking — the graceful-drain path, so a
// signalled soak still reports a verdict.
func RunTarget(ctx context.Context, cfg Config, t Target) (*Result, error) {
	cfg.applyDefaults()
	schedule := Schedule{Seed: cfg.Seed, Events: cfg.Script}
	if len(cfg.Script) == 0 {
		schedule = Generate(cfg.Seed, cfg)
	}

	r := &runner{cfg: cfg, t: t}

	// Background traffic for the no-acked-loss checker.
	stopTraffic := t.StartTraffic(cfg.MessageEvery)

	// Continuous monotonic-state sampling.
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go r.monotonicLoop(samplerStop, samplerDone)

	r.execute(ctx, schedule)
	t.Quiesce()
	r.awaitSinglePrimary()

	close(samplerStop)
	<-samplerDone
	stopTraffic()

	// Every accepted message must land now that the system is (supposedly)
	// healthy again.
	r.addViolations(t.DrainAndAudit(cfg.DrainTimeout)...)

	worst := r.checkRecoveryBound()

	res := &Result{
		Seed:          cfg.Seed,
		Schedule:      schedule,
		Injected:      r.injected,
		Skipped:       r.skipped,
		Violations:    r.violations,
		WorstRecovery: worst,
	}
	res.Enqueued, res.Delivered, res.Dropped = t.TrafficCounts()
	t.ReportVerdict(cfg.Seed, r.injected, len(res.Violations))
	return res, nil
}

func fmtVerdict(seed int64, injected, violations int) string {
	return fmt.Sprintf("seed=%d faults=%d violations=%d", seed, injected, violations)
}

func (r *runner) addViolations(vs ...Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.violations = append(r.violations, vs...)
}

// monotonicLoop samples the active primary's counter and holds it to a
// ratcheting low-water mark. Sampling is skipped whenever the target is not
// exactly one live primary: during dual-primary windows the copies
// legitimately diverge, and holding either to the mark would
// false-positive.
func (r *runner) monotonicLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(r.cfg.SampleEvery)
	defer t.Stop()
	lowWater := int64(0)
	reported := false
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		seq, ok := r.t.PrimarySeq()
		if !ok {
			continue
		}
		if seq < lowWater && !reported {
			reported = true // one report per campaign is enough
			r.addViolations(Violation{
				Invariant: InvMonotonic,
				Detail: fmt.Sprintf("counter regressed below low-water mark: %d < %d (allowance %d ticks)",
					seq, lowWater, r.cfg.AllowedLoss),
			})
		}
		if mark := seq - r.cfg.AllowedLoss; mark > lowWater {
			lowWater = mark
		}
	}
}

// action is one timed step of the execution plan: a scheduled injection
// or its derived repair/heal.
type action struct {
	at  time.Duration
	run func()
}

// execute runs the schedule in real time: every event is injected at its
// virtual offset, and every timed fault gets a derived heal/repair action
// at offset+Dur. All injections and repairs run on this one goroutine, so
// target mutations never race each other. A cancelled ctx runs every
// remaining repair immediately (no fault may outlive the campaign) and
// returns.
func (r *runner) execute(ctx context.Context, s Schedule) {
	var plan []action
	for _, ev := range s.Events {
		ev := ev
		// slot carries the injection-time repair closure forward to the
		// repair action; injections always precede their repairs because
		// the plan is time-sorted and Dur > 0.
		slot := new(func())
		plan = append(plan, action{at: ev.At, run: func() { r.inject(ev, slot) }})
		if ev.Dur > 0 {
			plan = append(plan, action{at: ev.At + ev.Dur, run: func() {
				if rep := *slot; rep != nil {
					*slot = nil
					rep()
				}
			}})
		}
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].at < plan[j].at })

	start := time.Now()
	for i, a := range plan {
		if wait := a.at - time.Since(start); wait > 0 {
			select {
			case <-ctx.Done():
				// Drain: apply every outstanding repair, skip the rest.
				for _, rest := range plan[i:] {
					rest.run()
				}
				return
			case <-time.After(wait):
			}
		}
		a.run()
	}
}

// inject applies one event through the target. Inapplicable faults are
// counted as skipped — the schedule stays replayable either way.
func (r *runner) inject(ev Event, slot *func()) {
	repair, ok := r.t.Inject(ev)
	if ok {
		*slot = repair
	}
	r.mu.Lock()
	if ok {
		r.injected++
	} else {
		r.skipped++
	}
	r.mu.Unlock()
	if ok {
		r.t.NoteFault(ev.Kind)
	}
}

// awaitSinglePrimary enforces eventually-single-primary: the target must
// converge to exactly one primary with a live application copy within
// QuiesceTimeout, then hold it (no dual-primary relapse) for the
// stability dwell.
func (r *runner) awaitSinglePrimary() {
	poll := r.cfg.SampleEvery / 2
	if poll < 2*time.Millisecond {
		poll = 2 * time.Millisecond
	}
	deadline := time.Now().Add(r.cfg.QuiesceTimeout)
	converged := false
	for time.Now().Before(deadline) {
		if r.t.PrimaryReady() {
			converged = true
			break
		}
		time.Sleep(poll)
	}
	if !converged {
		r.addViolations(Violation{
			Invariant: InvSinglePrimary,
			Detail: fmt.Sprintf("no stable single primary within %s of quiescence (primaries=%d)",
				r.cfg.QuiesceTimeout, r.t.Primaries()),
		})
		return
	}
	dwellEnd := time.Now().Add(r.cfg.StabilityDwell)
	for time.Now().Before(dwellEnd) {
		if n := r.t.Primaries(); n > 1 {
			r.addViolations(Violation{
				Invariant: InvSinglePrimary,
				Detail:    "dual-primary relapse during stability dwell",
			})
			return
		}
		time.Sleep(poll)
	}
}

// checkRecoveryBound audits completed recovery traces against the bound
// and returns the worst observed recovery time.
func (r *runner) checkRecoveryBound() time.Duration {
	worst := r.t.WorstRecovery()
	if worst > r.cfg.RecoveryBound {
		r.addViolations(Violation{
			Invariant: InvRecoveryBound,
			Detail:    fmt.Sprintf("worst recovery %s exceeds bound %s", worst.Round(time.Millisecond), r.cfg.RecoveryBound),
		})
	}
	return worst
}

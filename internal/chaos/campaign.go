package chaos

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/diverter"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Config parameterizes one campaign.
type Config struct {
	// Seed drives every random choice: the schedule, the fabric, the
	// diverter jitter. Same seed, same campaign.
	Seed int64
	// Duration is the fault-injection window (default 500ms). Quiescence
	// and invariant checking run after it.
	Duration time.Duration
	// MeanGap is the average spacing between faults (default 80ms).
	MeanGap time.Duration
	// Palette restricts which fault kinds the generator draws from
	// (default: DefaultPalette).
	Palette []Kind
	// Script, when non-empty, replaces the generated schedule entirely —
	// the scripted-campaign mode for regression replays and targeted
	// scenarios.
	Script []Event

	// QuiesceTimeout bounds post-campaign convergence to a single primary
	// (default 10s).
	QuiesceTimeout time.Duration
	// StabilityDwell is how long the converged pair is watched for a
	// dual-primary relapse (default 200ms).
	StabilityDwell time.Duration
	// RecoveryBound fails the campaign if any recovery trace runs longer
	// (default 5s).
	RecoveryBound time.Duration
	// AllowedLoss is the monotonic checker's slack in probe ticks — the
	// work a failover may legitimately lose (checkpoint window plus
	// detection time; default 250 ticks).
	AllowedLoss int64
	// MessageEvery is the diverter traffic period (default 5ms).
	MessageEvery time.Duration
	// ProbeTick is the probe counter period (default 2ms).
	ProbeTick time.Duration

	// DisableTieBreak turns off the engines' split-brain resolution —
	// deliberately breaking the eventually-single-primary invariant to
	// prove the checker catches it.
	DisableTieBreak bool
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.MeanGap <= 0 {
		c.MeanGap = 80 * time.Millisecond
	}
	if c.QuiesceTimeout <= 0 {
		c.QuiesceTimeout = 10 * time.Second
	}
	if c.StabilityDwell <= 0 {
		c.StabilityDwell = 200 * time.Millisecond
	}
	if c.RecoveryBound <= 0 {
		c.RecoveryBound = 5 * time.Second
	}
	if c.AllowedLoss <= 0 {
		c.AllowedLoss = 250
	}
	if c.MessageEvery <= 0 {
		c.MessageEvery = 5 * time.Millisecond
	}
	if c.ProbeTick <= 0 {
		c.ProbeTick = 2 * time.Millisecond
	}
}

// Result is one campaign's outcome.
type Result struct {
	Seed     int64
	Schedule Schedule
	// Injected counts faults actually applied; Skipped counts schedule
	// entries that were inapplicable when their time came (e.g. kill-app
	// while no copy was active) — skips are not failures.
	Injected, Skipped int
	Violations        []Violation
	// WorstRecovery is the longest completed recovery trace.
	WorstRecovery time.Duration
	// Diverter accounting over the whole campaign.
	Enqueued, Delivered, Dropped int64
}

// Passed reports whether every invariant held.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// runner is one campaign's mutable state.
type runner struct {
	cfg Config
	d   *core.Deployment
	led *ledger

	mu         sync.Mutex
	violations []Violation
	injected   int
	skipped    int
	flappers   []*netsim.Flapper

	faultsTotal     *telemetry.Counter
	violationsTotal *telemetry.Counter
}

// Run executes one seeded campaign against a fresh deployment and reports
// the invariant verdicts. Failures reproduce from (seed, config) alone.
func Run(cfg Config) (*Result, error) {
	cfg.applyDefaults()
	schedule := Schedule{Seed: cfg.Seed, Events: cfg.Script}
	if len(cfg.Script) == 0 {
		schedule = Generate(cfg.Seed, cfg)
	}

	led := newLedger()
	d, err := core.New(core.Config{
		Seed:             cfg.Seed,
		Component:        "app",
		CheckpointPeriod: 10 * time.Millisecond,
		Rule:             engine.RecoveryRule{MaxLocalRestarts: 1, Exhausted: engine.ExhaustSwitchover},
		SkipMonitor:      true,
		NewApp:           func(string) core.ReplicatedApp { return NewProbe(cfg.ProbeTick) },
		TuneDiverter: func(dc *diverter.Config) {
			dc.Ledger = led
			dc.Seed = cfg.Seed
		},
		TuneEngine: func(ec *engine.Config) {
			ec.DisableTieBreak = cfg.DisableTieBreak
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build deployment: %w", err)
	}
	defer d.Shutdown(context.Background())
	formCtx, cancelForm := context.WithTimeout(context.Background(), 5*time.Second)
	err = d.WaitForRolesContext(formCtx)
	cancelForm()
	if err != nil {
		return nil, fmt.Errorf("chaos: pair never formed: %w", err)
	}

	reg := d.Telemetry.Metrics()
	r := &runner{
		cfg:             cfg,
		d:               d,
		led:             led,
		faultsTotal:     reg.Counter("oftt_chaos_faults_injected_total"),
		violationsTotal: reg.Counter("oftt_chaos_invariant_violations_total"),
	}

	// Background diverter traffic for the no-acked-loss checker.
	senderStop := make(chan struct{})
	senderDone := make(chan struct{})
	go r.sendLoop(senderStop, senderDone)

	// Continuous monotonic-state sampling.
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go r.monotonicLoop(samplerStop, samplerDone)

	r.execute(schedule)
	r.quiesce()
	r.awaitSinglePrimary()

	close(samplerStop)
	<-samplerDone
	close(senderStop)
	<-senderDone

	// Every accepted message must land now that the pair is (supposedly)
	// healthy again.
	d.Div.Drain("app", 5*time.Second)
	r.addViolations(led.audit()...)

	worst := r.checkRecoveryBound()

	res := &Result{
		Seed:          cfg.Seed,
		Schedule:      schedule,
		Injected:      r.injected,
		Skipped:       r.skipped,
		Violations:    r.violations,
		WorstRecovery: worst,
	}
	st := d.Div.Stats()
	res.Enqueued, res.Delivered, res.Dropped = st.Enqueued, st.Delivered, st.Dropped
	r.violationsTotal.Add(int64(len(res.Violations)))
	verdict := "pass"
	if !res.Passed() {
		verdict = "fail"
	}
	d.Telemetry.ReportStatus(telemetry.Status{
		Node:      "testpc",
		Component: "chaos-campaign",
		Kind:      telemetry.KindChaos,
		State:     verdict,
		Detail:    fmt.Sprintf("seed=%d faults=%d violations=%d", cfg.Seed, r.injected, len(res.Violations)),
		UpdatedAt: time.Now(),
	})
	return res, nil
}

func (r *runner) addViolations(vs ...Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.violations = append(r.violations, vs...)
}

// sendLoop feeds the diverter a steady message stream.
func (r *runner) sendLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(r.cfg.MessageEvery)
	defer t.Stop()
	n := 0
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			n++
			_, _ = r.d.Send([]byte("chaos-" + strconv.Itoa(n)))
		}
	}
}

// primaries counts replicas currently holding the primary role.
func (r *runner) primaries() int {
	n := 0
	for _, rep := range r.d.Replicas() {
		if rep.Engine.Role() == engine.RolePrimary {
			n++
		}
	}
	return n
}

// monotonicLoop samples the active probe's counter and holds it to a
// ratcheting low-water mark. Sampling is skipped whenever the pair is not
// exactly one live primary: during dual-primary windows the copies
// legitimately diverge, and holding either to the mark would
// false-positive.
func (r *runner) monotonicLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	lowWater := int64(0)
	reported := false
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if r.primaries() != 1 {
			continue
		}
		p := r.d.Primary()
		if p == nil || !p.AppActive() {
			continue
		}
		probe, _ := p.CurrentApp().(*Probe)
		if probe == nil {
			continue
		}
		seq := probe.Seq()
		if seq < 0 {
			continue
		}
		if seq < lowWater && !reported {
			reported = true // one report per campaign is enough
			r.addViolations(Violation{
				Invariant: InvMonotonic,
				Detail: fmt.Sprintf("counter regressed below low-water mark: %d < %d (allowance %d ticks)",
					seq, lowWater, r.cfg.AllowedLoss),
			})
		}
		if mark := seq - r.cfg.AllowedLoss; mark > lowWater {
			lowWater = mark
		}
	}
}

// action is one timed step of the execution plan: a scheduled injection
// or its derived repair/heal.
type action struct {
	at  time.Duration
	run func()
}

// execute runs the schedule in real time: every event is injected at its
// virtual offset, and every timed fault gets a derived heal/repair action
// at offset+Dur. All injections and repairs run on this one goroutine, so
// deployment mutations never race each other.
func (r *runner) execute(s Schedule) {
	var plan []action
	for _, ev := range s.Events {
		ev := ev
		// holder carries the injection-time resolution (the concrete node
		// the symbolic target mapped to) forward to the repair action.
		holder := &struct{ node string }{}
		plan = append(plan, action{at: ev.At, run: func() { r.inject(ev, holder) }})
		if ev.Dur > 0 {
			plan = append(plan, action{at: ev.At + ev.Dur, run: func() { r.repair(ev, holder) }})
		}
	}
	sort.SliceStable(plan, func(i, j int) bool { return plan[i].at < plan[j].at })

	start := time.Now()
	for _, a := range plan {
		if wait := a.at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		a.run()
	}
}

// resolve maps a symbolic target to a live replica, nil when inapplicable.
func (r *runner) resolve(target string) *core.Replica {
	switch target {
	case "primary":
		return r.d.Primary()
	case "backup":
		return r.d.Backup()
	default:
		return nil
	}
}

// inject applies one event. Inapplicable faults (no current holder of the
// symbolic role, component already dead) are counted as skipped — the
// schedule stays replayable either way.
func (r *runner) inject(ev Event, holder *struct{ node string }) {
	ok := true
	switch ev.Kind {
	case KillNode, BlueScreen, KillApp, KillEngine, HangApp, HangEngine:
		rep := r.resolve(ev.Target)
		if rep == nil {
			ok = false
			break
		}
		holder.node = rep.Node.Name()
		if err := r.d.Inject(core.FaultKind(ev.Kind), holder.node); err != nil {
			ok = false
		}
	case Partition:
		r.d.PartitionPair()
	case PartitionOne:
		p, b := r.d.Primary(), r.d.Backup()
		if p == nil || b == nil {
			ok = false
			break
		}
		from, to := p.Node.Name(), b.Node.Name()
		if ev.Target == "backup->primary" {
			from, to = to, from
		}
		r.d.PartitionOneWay(from, to)
	case LinkFlap:
		fs := r.d.NewLinkFlappers(15*time.Millisecond, 15*time.Millisecond)
		for _, f := range fs {
			f.Start()
		}
		r.mu.Lock()
		r.flappers = append(r.flappers, fs...)
		r.mu.Unlock()
	case LossBurst:
		r.d.SetLoss(ev.Param)
	case LatencySpike:
		lat := time.Duration(ev.Param * float64(time.Millisecond))
		r.d.SetLatency(lat, lat/2)
	case CkptInterrupt:
		rep := r.d.Primary() // the primary ships checkpoints
		if rep == nil {
			ok = false
			break
		}
		holder.node = rep.Node.Name()
		if err := r.d.InterruptCheckpointTransfer(holder.node); err != nil {
			ok = false
		}
	default:
		ok = false
	}

	r.mu.Lock()
	if ok {
		r.injected++
	} else {
		r.skipped++
	}
	r.mu.Unlock()
	if ok {
		r.faultsTotal.Inc()
		r.d.Telemetry.Metrics().Counter(`oftt_chaos_faults_injected_total{kind="` + string(ev.Kind) + `"}`).Inc()
	}
}

// repair undoes a timed fault after its active window: heal the link,
// resume the hang, or restart what died. Kill-app needs no explicit
// repair (the engine's local-restart provision covers it) beyond the
// node-health check, which is a no-op when recovery already happened.
func (r *runner) repair(ev Event, holder *struct{ node string }) {
	switch ev.Kind {
	case KillNode, BlueScreen, KillEngine, KillApp:
		if holder.node != "" {
			r.repairNode(holder.node)
		}
	case HangApp:
		if holder.node != "" {
			_ = r.d.ResumeApp(holder.node)
		}
	case HangEngine:
		if holder.node != "" {
			_ = r.d.ResumeEngine(holder.node)
		}
	case Partition, PartitionOne:
		names := r.d.NodeNames()
		for _, n := range r.d.Nets {
			n.HealPrefix(names[0]+":", names[1]+":")
		}
	case LinkFlap:
		r.mu.Lock()
		fs := r.flappers
		r.flappers = nil
		r.mu.Unlock()
		for _, f := range fs {
			f.Stop()
		}
	case LossBurst:
		r.d.SetLoss(0)
	case LatencySpike:
		r.d.SetLatency(0, 0)
	}
}

// repairNode brings one node back to full health: reboot a dead machine,
// power-cycle a live one whose engine or application process died (the
// clean-rejoin pattern — a half-dead node re-enters as a fresh backup).
// A no-op when the replica is healthy, so it is safe to call after faults
// the engine already recovered from.
func (r *runner) repairNode(name string) {
	rep := r.d.Replica(name)
	if rep == nil {
		return
	}
	if rep.Node.State() != cluster.NodeUp {
		_ = r.d.RestartNode(name)
		return
	}
	if !rep.Healthy() {
		rep.Node.PowerOff()
		_ = r.d.RestartNode(name)
	}
}

// quiesce ends the fault window: stop flapping, heal every link, clear
// loss and latency, resume any hangs, and repair every unhealthy node.
// After quiesce the pair has everything it needs to converge — whether it
// does is the invariants' business.
func (r *runner) quiesce() {
	r.mu.Lock()
	fs := r.flappers
	r.flappers = nil
	r.mu.Unlock()
	for _, f := range fs {
		f.Stop()
	}
	r.d.HealNetworks()
	for _, name := range r.d.NodeNames() {
		_ = r.d.ResumeApp(name)
		_ = r.d.ResumeEngine(name)
	}
	for _, name := range r.d.NodeNames() {
		r.repairNode(name)
	}
}

// awaitSinglePrimary enforces eventually-single-primary: the pair must
// converge to exactly one primary with a live application copy within
// QuiesceTimeout, then hold it (no dual-primary relapse) for the
// stability dwell.
func (r *runner) awaitSinglePrimary() {
	deadline := time.Now().Add(r.cfg.QuiesceTimeout)
	converged := false
	for time.Now().Before(deadline) {
		if r.primaries() == 1 {
			if p := r.d.Primary(); p != nil && p.AppActive() {
				converged = true
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !converged {
		r.addViolations(Violation{
			Invariant: InvSinglePrimary,
			Detail: fmt.Sprintf("no stable single primary within %s of quiescence (primaries=%d)",
				r.cfg.QuiesceTimeout, r.primaries()),
		})
		return
	}
	dwellEnd := time.Now().Add(r.cfg.StabilityDwell)
	for time.Now().Before(dwellEnd) {
		if n := r.primaries(); n > 1 {
			r.addViolations(Violation{
				Invariant: InvSinglePrimary,
				Detail:    "dual-primary relapse during stability dwell",
			})
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// checkRecoveryBound audits completed recovery traces against the bound
// and returns the worst observed recovery time.
func (r *runner) checkRecoveryBound() time.Duration {
	var worst time.Duration
	for _, tr := range r.d.Telemetry.Tracer().Traces() {
		if d := tr.Duration(); d > worst {
			worst = d
		}
	}
	if worst > r.cfg.RecoveryBound {
		r.addViolations(Violation{
			Invariant: InvRecoveryBound,
			Detail:    fmt.Sprintf("worst recovery %s exceeds bound %s", worst.Round(time.Millisecond), r.cfg.RecoveryBound),
		})
	}
	return worst
}

package chaos

import (
	"testing"
)

// TestFabricOPCSubscriptionSurvival is the data-plane chaos gate: a
// fixed-seed fault campaign with the OPC probe on. Subscriptions on the
// new Subscribe surface consume a sequence feed throughout the faults and
// bridge sentinel observations into the fabric groups; afterwards every
// subscription must have observed the closing sentinel and no bridged
// message may be lost. Runs under -short, so `make chaos` covers the
// shared-scan-cycle machinery under -race on every verify.
func TestFabricOPCSubscriptionSurvival(t *testing.T) {
	res, err := RunFabric(FabricConfig{
		Seed:           1313,
		Nodes:          5,
		Groups:         8,
		Replicas:       3,
		Rounds:         6,
		OPCSubscribers: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) == 0 {
		t.Fatal("campaign injected no faults")
	}
	if !res.Passed() {
		t.Fatalf("invariant violations after %v:\n%v", res.Faults, res.Violations)
	}
	if res.OPCDelivered == 0 {
		t.Fatal("OPC probe delivered nothing")
	}
	if res.Sent == 0 || res.Delivered < res.Sent {
		t.Fatalf("acked loss: sent=%d delivered=%d", res.Sent, res.Delivered)
	}
	t.Logf("faults=%v sent=%d delivered=%d opc=%d",
		res.Faults, res.Sent, res.Delivered, res.OPCDelivered)
}

package chaos

import (
	"time"
)

// Target is the system under test a campaign drives. Two implementations
// exist: the in-process core.Deployment on netsim (the classic campaign),
// and internal/e2e's external target — real oftt-node processes on real
// TCP, faulted with signals and a controllable link proxy.
//
// All Inject/Repair/Quiesce calls arrive on one goroutine; the observation
// methods (Primaries, PrimarySeq, ...) may be called concurrently from the
// samplers.
type Target interface {
	// Inject applies one scheduled fault. It returns the repair that undoes
	// the fault after its active window (nil when no repair is needed) and
	// whether the fault was applicable — an inapplicable fault (no current
	// holder of the symbolic role) is counted as skipped, not failed.
	Inject(ev Event) (repair func(), ok bool)

	// Quiesce ends the fault window: heal every link, resume every hang,
	// repair every dead node. After Quiesce the system has everything it
	// needs to converge — whether it does is the invariants' business.
	Quiesce()

	// Primaries counts replicas currently claiming the primary role.
	Primaries() int

	// PrimaryReady reports whether exactly one primary holds a live
	// application copy — the convergence condition.
	PrimaryReady() bool

	// PrimarySeq samples the monotonic state counter of the single live
	// primary's application. ok is false whenever the sample is unusable
	// (no single primary, no active copy, counter not yet observable) —
	// the monotonic checker skips those windows.
	PrimarySeq() (seq int64, ok bool)

	// StartTraffic begins the steady message stream whose delivery ledger
	// backs the no-acked-loss invariant; the returned stop blocks until the
	// stream has shut down.
	StartTraffic(every time.Duration) (stop func())

	// DrainAndAudit waits for every accepted message to land now that the
	// system is (supposedly) healthy, then audits the ledger.
	DrainAndAudit(timeout time.Duration) []Violation

	// TrafficCounts reports (enqueued, delivered, dropped) totals.
	TrafficCounts() (enqueued, delivered, dropped int64)

	// WorstRecovery returns the longest completed recovery observed, from
	// the target's recovery traces.
	WorstRecovery() time.Duration

	// NoteFault and ReportVerdict feed the target's telemetry plane (fault
	// counters, campaign pass/fail status). Either may be a no-op.
	NoteFault(kind Kind)
	ReportVerdict(seed int64, injected, violations int)
}

// Package chaos is a deterministic, seeded fault-injection campaign
// engine for OFTT deployments. A Campaign generates a replayable Schedule
// of faults from a seed — node kills, process crashes and hangs, symmetric
// and asymmetric network partitions, link flapping, datagram-loss bursts,
// latency spikes, checkpoint-transfer interruption — drives it against a
// live core.Deployment, and checks invariants continuously:
//
//   - eventually-single-primary: after fault quiescence the pair converges
//     to exactly one primary and stays there;
//   - monotonic application state: the replicated counter never regresses
//     past the checkpoint-loss allowance;
//   - no acknowledged-message loss: every message the diverter accepted is
//     eventually delivered (or explicitly dropped), audited by a ledger;
//   - bounded recovery time: no recovery trace exceeds the configured
//     bound.
//
// The same seed always produces the same schedule, so any failure
// reproduces from (seed, config) alone — the property hand-picked
// scenarios (Section 4 of the paper, experiment E3) cannot give.
package chaos

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ftim"
)

// Probe is the campaign's replicated application: a monotonic counter
// ticking under the FTIM lock (the chaosApp pattern from core's chaos
// test, promoted to a reusable invariant probe). It also consumes diverter
// messages so the no-acked-loss checker has real deliveries to audit.
type Probe struct {
	mu    sync.Mutex
	f     *ftim.ClientFTIM
	state struct {
		Seq      int64 // monotonic work counter
		Messages int64 // diverter messages applied
	}
	tick time.Duration
	stop chan struct{}
	done chan struct{}
}

// NewProbe returns a probe ticking every tick (default 2ms).
func NewProbe(tick time.Duration) *Probe {
	if tick <= 0 {
		tick = 2 * time.Millisecond
	}
	return &Probe{tick: tick}
}

// Setup registers the probe's state with its FTIM.
func (p *Probe) Setup(f *ftim.ClientFTIM) error {
	p.mu.Lock()
	p.f = f
	p.mu.Unlock()
	return f.RegisterState("probe", &p.state)
}

// Activate starts the counter loop; only the primary's copy runs it.
func (p *Probe) Activate(bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(p.tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.f.WithLock(func() { p.state.Seq++ })
			case <-stop:
				return
			}
		}
	}(p.stop, p.done)
}

// Deactivate idles the copy.
func (p *Probe) Deactivate() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop = nil
	}
}

// Stop releases the probe.
func (p *Probe) Stop() { p.Deactivate() }

// HandleMessage applies one diverter message (acks it into the counter).
func (p *Probe) HandleMessage(body []byte) error {
	p.mu.Lock()
	f := p.f
	p.mu.Unlock()
	if f != nil {
		f.WithLock(func() { p.state.Messages++ })
	}
	return nil
}

// Seq reads the monotonic counter; -1 before Setup.
func (p *Probe) Seq() int64 {
	p.mu.Lock()
	f := p.f
	p.mu.Unlock()
	if f == nil {
		return -1
	}
	var v int64
	f.WithLock(func() { v = p.state.Seq })
	return v
}

var _ core.ReplicatedApp = (*Probe)(nil)
var _ core.MessageHandler = (*Probe)(nil)

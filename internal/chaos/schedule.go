package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
)

// Kind names one injectable fault in a campaign schedule. The first six
// mirror core's node/process fault surface; the rest are link faults.
type Kind string

// The campaign fault palette.
const (
	KillNode      Kind = Kind(core.FaultKillNode)
	BlueScreen    Kind = Kind(core.FaultBlueScreen)
	KillApp       Kind = Kind(core.FaultKillApp)
	KillEngine    Kind = Kind(core.FaultKillEngine)
	HangApp       Kind = Kind(core.FaultHangApp)
	HangEngine    Kind = Kind(core.FaultHangEngine)
	Partition     Kind = "partition"        // symmetric inter-node cut
	PartitionOne  Kind = "partition-oneway" // asymmetric: Target direction only
	LinkFlap      Kind = "link-flap"        // inter-node link toggles for Dur
	LossBurst     Kind = "loss-burst"       // datagram loss at Param rate for Dur
	LatencySpike  Kind = "latency-spike"    // Param ms delivery latency for Dur
	CkptInterrupt Kind = "ckpt-interrupt"   // sever checkpoint transfer mid-stream
)

// DefaultPalette is every fault kind.
var DefaultPalette = []Kind{
	KillNode, BlueScreen, KillApp, KillEngine, HangApp, HangEngine,
	Partition, PartitionOne, LinkFlap, LossBurst, LatencySpike, CkptInterrupt,
}

// Event is one scheduled fault. At is the virtual offset from campaign
// start; Target is symbolic ("primary", "backup", or a direction like
// "primary->backup") and resolved to a node name at injection time, so a
// schedule replays against whatever role layout the replay produces.
type Event struct {
	At     time.Duration
	Kind   Kind
	Target string
	// Dur is how long the fault stays active before the campaign heals or
	// repairs it (zero for instantaneous faults such as ckpt-interrupt).
	Dur time.Duration
	// Param carries the fault's magnitude: loss rate for loss-burst,
	// latency in milliseconds for latency-spike.
	Param float64
}

func (e Event) String() string {
	s := fmt.Sprintf("+%-6s %-17s", e.At.Round(time.Millisecond), e.Kind)
	if e.Target != "" {
		s += " " + e.Target
	}
	if e.Dur > 0 {
		s += fmt.Sprintf(" for %s", e.Dur.Round(time.Millisecond))
	}
	if e.Param != 0 {
		s += fmt.Sprintf(" (%.2g)", e.Param)
	}
	return s
}

// Schedule is a campaign's complete, replayable fault plan. It is a pure
// function of (seed, campaign config): regenerate with the same inputs and
// you get an identical schedule.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders one event per line.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d (%d faults)\n", s.Seed, len(s.Events))
	for _, e := range s.Events {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Summary is a compact single-line fault list ("kill-node@120ms, ...").
func (s Schedule) Summary() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = fmt.Sprintf("%s@%s", e.Kind, e.At.Round(time.Millisecond))
	}
	return strings.Join(parts, ", ")
}

// Generate derives a schedule from the seed: fault times are spaced
// 0.5–1.5× MeanGap apart across Duration, each drawing a kind from the
// palette, a symbolic target, an active window, and a magnitude. All
// randomness comes from one seeded source — determinism is the contract.
func Generate(seed int64, cfg Config) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	palette := cfg.Palette
	if len(palette) == 0 {
		palette = DefaultPalette
	}
	durMin, durSpan := cfg.FaultDurMin, cfg.FaultDurSpan
	if durMin <= 0 {
		durMin = 100 * time.Millisecond
	}
	if durSpan <= 0 {
		durSpan = 200 * time.Millisecond
	}
	at := time.Duration(0)
	for {
		gap := cfg.MeanGap/2 + time.Duration(rng.Int63n(int64(cfg.MeanGap)))
		at += gap
		if at >= cfg.Duration {
			break
		}
		ev := Event{
			At:   at,
			Kind: palette[rng.Intn(len(palette))],
			Dur:  durMin + time.Duration(rng.Int63n(int64(durSpan))),
		}
		switch ev.Kind {
		case Partition, LinkFlap, LossBurst, LatencySpike:
			// Link faults have no node target.
		case PartitionOne:
			if rng.Intn(2) == 0 {
				ev.Target = "primary->backup"
			} else {
				ev.Target = "backup->primary"
			}
		default:
			if rng.Intn(2) == 0 {
				ev.Target = "primary"
			} else {
				ev.Target = "backup"
			}
		}
		switch ev.Kind {
		case LossBurst:
			ev.Param = 0.2 + 0.6*rng.Float64() // 20–80% datagram loss
		case LatencySpike:
			ev.Param = 2 + 10*rng.Float64() // 2–12ms latency
		case CkptInterrupt:
			ev.Dur = 0 // instantaneous
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

package chaos

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/netsim"
)

// seqRecorder is the chaos target service: it remembers every sequence
// number it has executed. The invariant below is set inclusion — every
// call the client counted as acknowledged must appear here. Retries may
// make it a superset (at-least-once), never a subset.
type seqRecorder struct {
	mu   sync.Mutex
	seen map[int64]bool
}

func (r *seqRecorder) Record(seq int64) int64 {
	r.mu.Lock()
	r.seen[seq] = true
	r.mu.Unlock()
	return seq
}

func (r *seqRecorder) has(seq int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[seq]
}

// TestPipelinedClientFlapsAndSpikes is the multiplexed-transport chaos
// regression: a client keeps a deep async window open across a link that
// flaps and a fabric whose latency spikes an order of magnitude, redialing
// whenever the connection poisons. It must (a) never count an ack the
// server did not execute, (b) leave no waiter hanging, and (c) finish the
// remaining work within a bound once the link stops flapping.
func TestPipelinedClientFlapsAndSpikes(t *testing.T) {
	const (
		total         = 400
		window        = 32
		flapFor       = 400 * time.Millisecond
		recoveryBound = 10 * time.Second
		campaignBound = 30 * time.Second
	)

	n := netsim.New("eth0", 77)
	n.SetLatency(200*time.Microsecond, 100*time.Microsecond)
	exp, err := dcom.NewExporter(n, "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	rec := &seqRecorder{seen: make(map[int64]bool)}
	oid := com.NewGUID()
	if err := exp.Export(oid, rec); err != nil {
		t.Fatal(err)
	}

	cli, err := dcom.Dial(n, "cli:rpc", "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetWindow(window)
	cli.SetTimeout(2 * time.Second)
	p := cli.Object(oid)

	// Latency spiker: every 20ms the fabric lurches between sub-millisecond
	// and several-millisecond delivery — the queued-behind-a-spike replies
	// must still route to the right futures.
	stopSpike := make(chan struct{})
	var spikeWG sync.WaitGroup
	spikeWG.Add(1)
	go func() {
		defer spikeWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		high := false
		for {
			select {
			case <-stopSpike:
				n.SetLatency(200*time.Microsecond, 100*time.Microsecond)
				return
			case <-tick.C:
				if high {
					n.SetLatency(200*time.Microsecond, 100*time.Microsecond)
				} else {
					n.SetLatency(3*time.Millisecond, time.Millisecond)
				}
				high = !high
			}
		}
	}()
	defer func() { close(stopSpike); spikeWG.Wait() }()

	flap := n.NewFlapper("cli", "srv", 15*time.Millisecond, 25*time.Millisecond)
	flap.Start()
	flapping := true
	flapStopAt := time.Now().Add(flapFor)
	var recoveredBy time.Time

	ctx := context.Background()
	deadline := time.Now().Add(campaignBound)
	redial := func() {
		for time.Now().Before(deadline) {
			rctx, cancel := context.WithTimeout(ctx, time.Second)
			err := cli.RedialContext(rctx)
			cancel()
			if err == nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatal("redial never succeeded within the campaign bound")
	}

	type inflight struct {
		seq int64
		f   *dcom.Future
	}
	acked := make(map[int64]bool)
	queue := make([]int64, 0, total)
	for i := int64(0); i < total; i++ {
		queue = append(queue, i)
	}
	var outstanding []inflight

	// settle resolves one in-flight call: ack on success, requeue on any
	// failure. Every wait is bounded, so no waiter can hang.
	settle := func(inf inflight, wait time.Duration) {
		wctx, cancel := context.WithTimeout(ctx, wait)
		err := inf.f.Wait(wctx)
		cancel()
		if err == nil {
			acked[inf.seq] = true
		} else {
			queue = append(queue, inf.seq)
		}
	}

	for len(acked) < total {
		if time.Now().After(deadline) {
			t.Fatalf("campaign stalled: %d/%d acked, %d outstanding",
				len(acked), total, len(outstanding))
		}
		if flapping && time.Now().After(flapStopAt) {
			flap.Stop()
			flapping = false
			recoveredBy = time.Now().Add(recoveryBound)
		}
		if !flapping && time.Now().After(recoveredBy) {
			t.Fatalf("recovery bound exceeded: %d/%d acked after link healed",
				len(acked), total)
		}
		if cli.Broken() {
			for _, inf := range outstanding {
				settle(inf, time.Second) // poisoned futures resolve instantly
			}
			outstanding = outstanding[:0]
			redial()
			continue
		}
		for len(outstanding) < window && len(queue) > 0 {
			seq := queue[0]
			queue = queue[1:]
			f, err := p.CallAsync("Record", nil, seq)
			if err != nil {
				queue = append(queue, seq)
				break // poisoned mid-issue; loop handles redial
			}
			outstanding = append(outstanding, inflight{seq, f})
		}
		if len(outstanding) > 0 {
			settle(outstanding[0], 3*time.Second)
			outstanding = outstanding[1:]
		}
	}
	for _, inf := range outstanding {
		settle(inf, time.Second)
	}

	if flapping {
		flap.Stop()
	}
	if flap.Cycles() == 0 {
		t.Fatal("flapper never completed a cycle; the campaign tested nothing")
	}

	// The invariant: no acknowledged call was lost. The server may have
	// seen MORE (retries of calls whose first attempt did execute), but
	// every ack must be backed by an execution.
	for seq := int64(0); seq < total; seq++ {
		if !acked[seq] {
			t.Fatalf("seq %d never acked", seq)
		}
		if !rec.has(seq) {
			t.Fatalf("acked seq %d missing at the server: acked-message loss", seq)
		}
	}
}

package chaos

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/diverter"
)

// Invariant names for Violation.Invariant.
const (
	InvSinglePrimary = "eventually-single-primary"
	InvMonotonic     = "monotonic-state"
	InvNoAckedLoss   = "no-acked-loss"
	InvRecoveryBound = "bounded-recovery"
	// InvOPCContinuity: every OPC subscription in the campaign's data-plane
	// probe observes the closing sentinel after the final heal.
	InvOPCContinuity = "opc-subscription-continuity"
)

// Violation is one invariant breach observed during a campaign.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// ledger audits the diverter's delivery obligations: every Enqueued id
// must resolve to exactly one Delivered (or, if a drop policy is active,
// Dropped) call. It implements diverter.LedgerHook.
type ledger struct {
	mu        sync.Mutex
	enqueued  map[string]bool
	delivered map[string]bool
	dropped   map[string]int
}

func newLedger() *ledger {
	return &ledger{
		enqueued:  make(map[string]bool),
		delivered: make(map[string]bool),
		dropped:   make(map[string]int),
	}
}

func (l *ledger) Enqueued(id, dest string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enqueued[id] = true
}

func (l *ledger) Delivered(id, dest string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delivered[id] = true
}

func (l *ledger) Dropped(id, dest string, attempts int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropped[id] = attempts
}

// counts reports (enqueued, delivered, dropped) totals.
func (l *ledger) counts() (int, int, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.enqueued), len(l.delivered), len(l.dropped)
}

// audit returns violations for unresolved or dropped obligations. The
// campaign runs without a drop policy, so any drop is acknowledged loss.
func (l *ledger) audit() []Violation {
	l.mu.Lock()
	defer l.mu.Unlock()
	var lost []string
	for id := range l.enqueued {
		if !l.delivered[id] && l.dropped[id] == 0 {
			lost = append(lost, id)
		}
	}
	sort.Strings(lost)
	var out []Violation
	if len(lost) > 0 {
		sample := lost
		if len(sample) > 5 {
			sample = sample[:5]
		}
		out = append(out, Violation{
			Invariant: InvNoAckedLoss,
			Detail:    fmt.Sprintf("%d accepted messages never delivered (e.g. %v)", len(lost), sample),
		})
	}
	if n := len(l.dropped); n > 0 {
		out = append(out, Violation{
			Invariant: InvNoAckedLoss,
			Detail:    fmt.Sprintf("%d accepted messages dropped", n),
		})
	}
	return out
}

var _ diverter.LedgerHook = (*ledger)(nil)

package chaos

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diverter"
)

// TestLinkFlapDuringMultiShardDrain is the sharded-diverter chaos
// regression: concurrent producers fill several destination shards (the
// replicated app plus auxiliary endpoints) while the pair's link flaps,
// then every shard must drain within a bound once the network heals, with
// the ledger showing no acknowledged message lost or dropped. The old
// single-pump diverter serialized these destinations behind one lock;
// this pins the invariant that sharding did not trade safety for the
// parallelism.
func TestLinkFlapDuringMultiShardDrain(t *testing.T) {
	const (
		auxDests    = 6
		senders     = 4
		perSender   = 60
		drainBound  = 8 * time.Second
		flapsFor    = 300 * time.Millisecond
		auxFailEach = 3 // every 3rd aux delivery fails while links flap
	)

	led := newLedger()
	d, err := core.New(core.Config{
		Seed:        424242,
		Component:   "app",
		SkipMonitor: true,
		NewApp:      func(string) core.ReplicatedApp { return NewProbe(2 * time.Millisecond) },
		TuneDiverter: func(dc *diverter.Config) {
			dc.Ledger = led
			dc.Seed = 424242
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	rolesCtx, cancelRoles := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelRoles()
	if err := d.WaitForRolesContext(rolesCtx); err != nil {
		t.Fatal(err)
	}

	// Auxiliary destinations on their own shards. While the link is
	// unstable they fail a deterministic fraction of deliveries, so their
	// queues back up and redeliver exactly like the app route does.
	var flaky atomic.Bool
	flaky.Store(true)
	auxCounts := make([]atomic.Int64, auxDests)
	auxAttempts := make([]atomic.Int64, auxDests)
	for i := 0; i < auxDests; i++ {
		i := i
		d.Div.SetRoute(auxDest(i), func(m diverter.Message) error {
			if flaky.Load() && auxAttempts[i].Add(1)%auxFailEach == 0 {
				return fmt.Errorf("aux%d: link glitch", i)
			}
			auxCounts[i].Add(1)
			return nil
		})
	}

	// Start the link flap, then pour traffic into every shard while the
	// fabric is unstable — the "multi-shard drain under flap" window.
	flappers := d.NewLinkFlappers(12*time.Millisecond, 12*time.Millisecond)
	for _, f := range flappers {
		f.Start()
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if _, err := d.Send([]byte(fmt.Sprintf("app-s%d-%d", s, i))); err != nil {
					t.Error(err)
					return
				}
				dest := auxDest((s + i) % auxDests)
				if err := d.Div.SendWithID(fmt.Sprintf("aux-s%d-%d", s, i), dest, []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	time.Sleep(flapsFor) // let the flap chew on the backlog

	// Heal: stop the flappers (links end up), settle the aux endpoints,
	// and require every shard to drain inside the bound.
	for _, f := range flappers {
		f.Stop()
	}
	flaky.Store(false)
	healCtx, cancelHeal := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHeal()
	if _, err := d.WaitForPrimaryContext(healCtx); err != nil {
		t.Fatalf("no primary after heal: %v", err)
	}

	start := time.Now()
	if !d.Div.Drain("app", drainBound) {
		t.Fatalf("app shard did not drain in %v (pending=%d)", drainBound, d.Div.Pending("app"))
	}
	for i := 0; i < auxDests; i++ {
		if !d.Div.Drain(auxDest(i), drainBound) {
			t.Fatalf("aux%d shard did not drain (pending=%d)", i, d.Div.Pending(auxDest(i)))
		}
	}
	if elapsed := time.Since(start); elapsed > drainBound {
		t.Fatalf("multi-shard drain took %v, bound %v", elapsed, drainBound)
	}

	// No acked loss anywhere: every enqueued ID resolved to exactly one
	// delivery, none dropped — the invariant the refactor must preserve.
	if vs := led.audit(); len(vs) != 0 {
		t.Fatalf("ledger violations after flap drain: %v", vs)
	}
	st := d.Div.Stats()
	if st.Dropped != 0 {
		t.Fatalf("%d messages dropped", st.Dropped)
	}
	if st.Retries == 0 {
		t.Fatal("flap produced no retries — the fault window never bit")
	}
	enq, delv, _ := led.counts()
	want := senders * perSender * 2 // app + aux per iteration
	if enq != want || delv != want {
		t.Fatalf("ledger enqueued=%d delivered=%d, want %d", enq, delv, want)
	}
}

func auxDest(i int) string { return fmt.Sprintf("aux%d", i) }

package chaos

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/opc"
)

// opcProbe drives the OPC data plane alongside a fabric campaign: a
// plant server publishing a sequence feed, N subscriptions on the new
// Subscribe surface, and a bridge that forwards sentinel observations
// into the fabric groups — so OPC-sourced traffic must keep landing on
// primaries while the faults move them. After the final heal the probe
// publishes a closing sentinel and every subscription must observe it.
type opcProbe struct {
	srv    *opc.Server
	client *opc.Client
	subs   []*opc.Subscription

	lastSeq   []atomic.Int64
	delivered atomic.Int64
	seq       atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// opcProbeTags is the probe's watch set; chaos.seq is the sentinel.
var opcProbeTags = []string{"chaos.u0.pv", "chaos.u1.pv", "chaos.u2.pv", "chaos.seq"}

// startOPCProbe builds the server, the subscriptions, and the feeder.
// Subscription i forwards sentinel observations to groups[i%len(groups)]
// through sent, keeping the campaign's Sent/Delivered bookkeeping and
// ledger audit covering the OPC-sourced messages too.
func startOPCProbe(n int, every time.Duration, groups []*core.Group, sent *atomic.Int64) (*opcProbe, error) {
	p := &opcProbe{
		srv:     opc.NewServer("chaos-plant"),
		lastSeq: make([]atomic.Int64, n),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, tag := range opcProbeTags[:len(opcProbeTags)-1] {
		if err := p.srv.AddItem(opc.ItemDef{Tag: tag, CanonicalType: opc.VTFloat64}); err != nil {
			return nil, err
		}
	}
	if err := p.srv.AddItem(opc.ItemDef{Tag: "chaos.seq", CanonicalType: opc.VTInt64}); err != nil {
		return nil, err
	}
	p.client = opc.NewClient(p.srv)

	for i := 0; i < n; i++ {
		i := i
		var g *core.Group
		if len(groups) > 0 {
			g = groups[i%len(groups)]
		}
		sub, err := p.client.Subscribe(nil, opc.SubscriptionConfig{
			Name:       fmt.Sprintf("chaos-opc-%d", i),
			UpdateRate: 2 * time.Millisecond,
			Tags:       opcProbeTags,
			OnChange: func(updates []opc.ItemState) {
				p.delivered.Add(int64(len(updates)))
				for j := range updates {
					if updates[j].Tag != "chaos.seq" {
						continue
					}
					seq := updates[j].Value.Int
					if seq <= p.lastSeq[i].Load() {
						continue
					}
					p.lastSeq[i].Store(seq)
					if g != nil {
						if _, err := g.Send([]byte(fmt.Sprintf("opc-%d-%d", i, seq))); err == nil {
							sent.Add(1)
						}
					}
				}
			},
		})
		if err != nil {
			p.client.Close()
			p.srv.Close()
			return nil, err
		}
		p.subs = append(p.subs, sub)
	}

	go func() {
		defer close(p.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.publish()
			}
		}
	}()
	return p, nil
}

// publish bumps the plant values and the sentinel once.
func (p *opcProbe) publish() {
	seq := p.seq.Add(1)
	batch := []opc.ItemUpdate{
		{Tag: "chaos.u0.pv", Value: opc.VR8(float64(seq)), Quality: opc.GoodNonSpecific},
		{Tag: "chaos.u1.pv", Value: opc.VR8(float64(seq) * 0.5), Quality: opc.GoodNonSpecific},
		{Tag: "chaos.seq", Value: opc.VI8(seq), Quality: opc.GoodNonSpecific},
	}
	_ = p.srv.Publish(batch)
}

// finish stops the feeder, publishes one closing sentinel, and waits for
// every subscription to observe it. Returned violations name the stuck
// subscriptions.
func (p *opcProbe) finish(bound time.Duration) []Violation {
	close(p.stop)
	<-p.done
	p.publish()
	final := p.seq.Load()

	deadline := time.Now().Add(bound)
	for {
		lagging := 0
		for i := range p.lastSeq {
			if p.lastSeq[i].Load() < final {
				lagging++
			}
		}
		if lagging == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			var out []Violation
			for i := range p.lastSeq {
				if got := p.lastSeq[i].Load(); got < final {
					out = append(out, Violation{
						Invariant: InvOPCContinuity,
						Detail: fmt.Sprintf("subscription %d stuck at seq %d (final %d)",
							i, got, final),
					})
				}
			}
			return out
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// close releases the probe's OPC resources.
func (p *opcProbe) close() {
	p.client.Close()
	p.srv.Close()
}

package diverter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// orderRecorder collects delivered bodies of the form "s<sender>-<seq>"
// and can verify per-sender monotonicity.
type orderRecorder struct {
	mu  sync.Mutex
	got []string
}

func (o *orderRecorder) deliver(m Message) error {
	o.mu.Lock()
	o.got = append(o.got, string(m.Body))
	o.mu.Unlock()
	return nil
}

// checkPerSenderOrder fails the test unless, for every sender, that
// sender's messages appear in strictly increasing sequence order, with no
// gaps and no duplicates.
func (o *orderRecorder) checkPerSenderOrder(t *testing.T, senders, perSender int) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(o.got) != senders*perSender {
		t.Fatalf("delivered %d messages, want %d", len(o.got), senders*perSender)
	}
	next := make([]int, senders)
	for pos, body := range o.got {
		var sender, seq int
		if _, err := fmt.Sscanf(body, "s%d-%d", &sender, &seq); err != nil {
			t.Fatalf("unparseable body %q at %d", body, pos)
		}
		if seq != next[sender] {
			t.Fatalf("sender %d: got seq %d at position %d, want %d (per-sender FIFO violated)",
				sender, seq, pos, next[sender])
		}
		next[sender]++
	}
	for s, n := range next {
		if n != perSender {
			t.Fatalf("sender %d delivered %d of %d", s, n, perSender)
		}
	}
}

// TestConcurrentSendersPerSenderFIFO: N goroutines concurrently Send to
// one destination; each sender's messages must be delivered in its own
// enqueue order (the interleaving between senders is unspecified, the
// order within a sender is not).
func TestConcurrentSendersPerSenderFIFO(t *testing.T) {
	const senders, perSender = 8, 150
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	rec := &orderRecorder{}
	d.SetRoute("app", rec.deliver)

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if _, err := d.Send("app", []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if !d.Drain("app", 10*time.Second) {
		t.Fatal("queue never drained")
	}
	rec.checkPerSenderOrder(t, senders, perSender)
	if st := d.Stats(); st.Delivered != senders*perSender {
		t.Fatalf("stats: %+v", st)
	}
}

// TestConcurrentSendersAcrossShards: per-sender FIFO must also hold when
// the same senders spray messages across many destinations served in
// parallel — each (sender, destination) stream stays ordered.
func TestConcurrentSendersAcrossShards(t *testing.T) {
	const senders, dests, perPair = 4, 8, 40
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	recs := make([]*orderRecorder, dests)
	for i := range recs {
		recs[i] = &orderRecorder{}
		d.SetRoute(fmt.Sprintf("dest%d", i), recs[i].deliver)
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perPair; i++ {
				// Round-robin over destinations, one full pass per i, so
				// every (sender, dest) pair sees seq 0,1,2,... in order.
				for dn := 0; dn < dests; dn++ {
					dest := fmt.Sprintf("dest%d", dn)
					if _, err := d.Send(dest, []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(s)
	}
	wg.Wait()
	for i := 0; i < dests; i++ {
		if !d.Drain(fmt.Sprintf("dest%d", i), 10*time.Second) {
			t.Fatalf("dest%d never drained", i)
		}
	}
	for i, rec := range recs {
		rec.mu.Lock()
		n := len(rec.got)
		rec.mu.Unlock()
		if n != senders*perPair {
			t.Fatalf("dest%d delivered %d, want %d", i, n, senders*perPair)
		}
		rec.checkPerSenderOrder(t, senders, perPair)
	}
}

// TestRedeliveryAfterSwitchoverKeepsOrder: concurrent senders stream into
// a destination whose route dies mid-stream (the switchover window); once
// the new route appears, redelivery must preserve per-sender order, and
// the ledger must show every accepted message resolved exactly once.
func TestRedeliveryAfterSwitchoverKeepsOrder(t *testing.T) {
	const senders, perSender = 6, 80
	ledger := newTestLedger()
	d := New(Config{RetryInterval: 2 * time.Millisecond, Ledger: ledger})
	defer d.Stop()

	rec := &orderRecorder{}
	var primaryDead atomic.Bool
	// Old primary: acks until the kill switch flips, then fails every
	// delivery — exactly what the diverter sees during a switchover.
	d.SetRoute("app", func(m Message) error {
		if primaryDead.Load() {
			return errors.New("primary dead")
		}
		return rec.deliver(m)
	})

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if i == perSender/3 && s == 0 {
					primaryDead.Store(true) // kill mid-stream
				}
				if _, err := d.Send("app", []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	// Let the dead-primary window accumulate retries, then "complete the
	// switchover": the new primary's endpoint takes over the route.
	time.Sleep(20 * time.Millisecond)
	if d.Stats().Retries == 0 {
		t.Fatal("no retries recorded during the dead-primary window")
	}
	d.SetRoute("app", rec.deliver)
	if !d.Drain("app", 10*time.Second) {
		t.Fatal("queue never drained after switchover")
	}

	rec.checkPerSenderOrder(t, senders, perSender)
	if out := ledger.outstanding(); len(out) != 0 {
		t.Fatalf("%d unresolved ledger obligations after redelivery: %v", len(out), out[:min(5, len(out))])
	}
	ledger.mu.Lock()
	defer ledger.mu.Unlock()
	if len(ledger.delivered) != senders*perSender || len(ledger.dropped) != 0 {
		t.Fatalf("ledger delivered=%d dropped=%d, want %d/0",
			len(ledger.delivered), len(ledger.dropped), senders*perSender)
	}
	for id, n := range ledger.delivered {
		if n != 1 {
			t.Fatalf("message %s delivered %d times per the ledger", id, n)
		}
	}
}

package diverter

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// singlePump is the pre-sharding diverter, preserved verbatim in spirit as
// the benchmark baseline (the same way internal/ndr keeps its reflective
// codec as a reference): one global mutex in front of every destination,
// one pump goroutine delivering everything, O(n) dequeue, and a full-scan
// dedup expiry after every pump cycle. BenchmarkDiverterThroughput runs it
// head-to-head against the sharded implementation so the speedup claim is
// reproducible from this tree alone, forever.
//
// It is intentionally NOT exported and NOT compiled into the library — it
// exists only under test.
type singlePump struct {
	retryInterval time.Duration
	dedupWindow   time.Duration

	mu        sync.Mutex
	pending   map[string][]*Message // dest -> FIFO
	routes    map[string]DeliverFunc
	delivered map[string]time.Time // msgID -> delivery time (dedup)
	closed    bool
	drained   *sync.Cond
	nextID    atomic.Uint64

	delivCount atomic.Int64

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func newSinglePump(retryInterval, dedupWindow time.Duration) *singlePump {
	if retryInterval <= 0 {
		retryInterval = 20 * time.Millisecond
	}
	if dedupWindow <= 0 {
		dedupWindow = 30 * time.Second
	}
	p := &singlePump{
		retryInterval: retryInterval,
		dedupWindow:   dedupWindow,
		pending:       make(map[string][]*Message),
		routes:        make(map[string]DeliverFunc),
		delivered:     make(map[string]time.Time),
		kick:          make(chan struct{}, 1),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	p.drained = sync.NewCond(&p.mu)
	go p.pump()
	return p
}

func (p *singlePump) send(dest string, body []byte) (string, error) {
	id := "m" + strconv.FormatUint(p.nextID.Add(1), 10)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return id, ErrClosed
	}
	if _, dup := p.delivered[id]; dup {
		p.mu.Unlock()
		return id, nil
	}
	msg := msgPool.Get().(*Message)
	msg.ID, msg.Dest = id, dest
	msg.Body = append(msg.Body[:0], body...)
	msg.EnqueuedAt = time.Now()
	p.pending[dest] = append(p.pending[dest], msg)
	p.mu.Unlock()
	p.wake()
	return id, nil
}

func (p *singlePump) setRoute(dest string, fn DeliverFunc) {
	p.mu.Lock()
	p.routes[dest] = fn
	p.mu.Unlock()
	p.wake()
}

func (p *singlePump) wake() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *singlePump) pump() {
	defer close(p.done)
	t := time.NewTicker(p.retryInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
		case <-t.C:
		}
		p.deliverBatch()
		p.expireDedup()
	}
}

// deliverBatch attempts every queued message once, in FIFO order per
// destination — the old global-lock walk.
func (p *singlePump) deliverBatch() {
	p.mu.Lock()
	dests := make([]string, 0, len(p.pending))
	for dest := range p.pending {
		dests = append(dests, dest)
	}
	p.mu.Unlock()

	for _, dest := range dests {
		for {
			p.mu.Lock()
			queue := p.pending[dest]
			if len(queue) == 0 {
				delete(p.pending, dest)
				p.mu.Unlock()
				break
			}
			fn := p.routes[dest]
			msg := queue[0]
			if fn == nil {
				p.mu.Unlock()
				break
			}
			if _, dup := p.delivered[msg.ID]; dup {
				p.pending[dest] = queue[1:]
				p.drained.Broadcast()
				p.mu.Unlock()
				recycle(msg, msg.Attempts > 0)
				continue
			}
			msg.Attempts++
			p.mu.Unlock()

			err := fn(*msg)

			p.mu.Lock()
			if err == nil {
				p.delivered[msg.ID] = time.Now()
				p.pending[dest] = spDequeue(p.pending[dest], msg)
				p.drained.Broadcast()
				p.mu.Unlock()
				p.delivCount.Add(1)
				recycle(msg, true)
				continue
			}
			p.mu.Unlock()
			break
		}
	}
}

// spDequeue is the old O(n) removal.
func spDequeue(queue []*Message, msg *Message) []*Message {
	if len(queue) > 0 && queue[0] == msg {
		return queue[1:]
	}
	for i, m := range queue {
		if m == msg {
			return append(queue[:i], queue[i+1:]...)
		}
	}
	return queue
}

// expireDedup is the old full-scan expiry: O(delivered) under the global
// lock on every pump cycle — the stall the sharded design removes.
func (p *singlePump) expireDedup() {
	cutoff := time.Now().Add(-p.dedupWindow)
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, at := range p.delivered {
		if at.Before(cutoff) {
			delete(p.delivered, id)
		}
	}
}

func (p *singlePump) drain(dest string, timeout time.Duration) bool {
	expired := false
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		expired = true
		p.mu.Unlock()
		p.drained.Broadcast()
	})
	defer timer.Stop()
	p.wake()
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.pending[dest]) > 0 && !expired && !p.closed {
		p.drained.Wait()
	}
	return len(p.pending[dest]) == 0
}

func (p *singlePump) stopAll() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.drained.Broadcast()
	p.once.Do(func() { close(p.stop) })
	<-p.done
}

package diverter

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func collector() (DeliverFunc, func() []string) {
	var mu sync.Mutex
	var got []string
	fn := func(m Message) error {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, string(m.Body))
		return nil
	}
	read := func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
	return fn, read
}

func TestBasicDelivery(t *testing.T) {
	d := New(Config{RetryInterval: 5 * time.Millisecond})
	defer d.Stop()
	fn, read := collector()
	d.SetRoute("app", fn)

	if _, err := d.Send("app", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if !d.Drain("app", time.Second) {
		t.Fatal("message not delivered")
	}
	if got := read(); len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	st := d.Stats()
	if st.Enqueued != 1 || st.Delivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFIFOOrder(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	fn, read := collector()
	d.SetRoute("app", fn)
	for i := 0; i < 50; i++ {
		if _, err := d.Send("app", []byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Drain("app", 2*time.Second) {
		t.Fatal("queue never drained")
	}
	got := read()
	if len(got) != 50 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprintf("%03d", i) {
			t.Fatalf("order violated at %d: %q", i, s)
		}
	}
}

func TestQueuesWithoutRoute(t *testing.T) {
	d := New(Config{RetryInterval: 5 * time.Millisecond})
	defer d.Stop()
	if _, err := d.Send("app", []byte("early")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if d.Pending("app") != 1 {
		t.Fatalf("pending = %d", d.Pending("app"))
	}
	fn, read := collector()
	d.SetRoute("app", fn)
	if !d.Drain("app", time.Second) {
		t.Fatal("queued message not delivered after route appeared")
	}
	if got := read(); len(got) != 1 || got[0] != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestRetryOnFailureThenSwitchover(t *testing.T) {
	d := New(Config{RetryInterval: 5 * time.Millisecond})
	defer d.Stop()

	// Old primary: always failing (it is dead).
	d.SetRoute("app", func(Message) error { return errors.New("primary dead") })
	if _, err := d.Send("app", []byte("during-switchover")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	if d.Pending("app") != 1 {
		t.Fatalf("message lost during failed deliveries: pending=%d", d.Pending("app"))
	}
	st := d.Stats()
	if st.Retries == 0 {
		t.Fatal("no retry attempts recorded")
	}

	// Switchover completes: new primary registered.
	fn, read := collector()
	d.SetRoute("app", fn)
	if !d.Drain("app", time.Second) {
		t.Fatal("message not redelivered to new primary")
	}
	if got := read(); len(got) != 1 || got[0] != "during-switchover" {
		t.Fatalf("got %v", got)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	fn, read := collector()
	d.SetRoute("app", fn)

	if err := d.SendWithID("dup-1", "app", []byte("once")); err != nil {
		t.Fatal(err)
	}
	if !d.Drain("app", time.Second) {
		t.Fatal("not delivered")
	}
	// Idempotent resend of a delivered ID.
	if err := d.SendWithID("dup-1", "app", []byte("once")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if got := read(); len(got) != 1 {
		t.Fatalf("duplicate delivered: %v", got)
	}
	if d.Stats().DupDropped == 0 {
		t.Fatal("dup counter not incremented")
	}
}

func TestDedupWindowExpiry(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond, DedupWindow: 20 * time.Millisecond})
	defer d.Stop()
	fn, read := collector()
	d.SetRoute("app", fn)
	_ = d.SendWithID("x", "app", []byte("a"))
	d.Drain("app", time.Second)
	time.Sleep(60 * time.Millisecond) // let the dedup entry expire
	_ = d.SendWithID("x", "app", []byte("a"))
	d.Drain("app", time.Second)
	if got := read(); len(got) != 2 {
		t.Fatalf("expired ID should deliver again: %v", got)
	}
}

func TestMaxAttemptsDrops(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond, MaxAttempts: 3})
	defer d.Stop()
	var attempts int
	var mu sync.Mutex
	d.SetRoute("app", func(Message) error {
		mu.Lock()
		attempts++
		mu.Unlock()
		return errors.New("never works")
	})
	_, _ = d.Send("app", []byte("poison"))
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	if d.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d", d.Stats().Dropped)
	}
	if d.Pending("app") != 0 {
		t.Fatal("poison message still queued")
	}
}

func TestHeadOfLineBlockingPreservesOrder(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()

	var mu sync.Mutex
	failFirst := true
	var got []string
	d.SetRoute("app", func(m Message) error {
		mu.Lock()
		defer mu.Unlock()
		if failFirst && string(m.Body) == "first" {
			return errors.New("not yet")
		}
		got = append(got, string(m.Body))
		return nil
	})
	_, _ = d.Send("app", []byte("first"))
	_, _ = d.Send("app", []byte("second"))
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if len(got) != 0 {
		mu.Unlock()
		t.Fatalf("second overtook blocked first: %v", got)
	}
	failFirst = false
	mu.Unlock()
	if !d.Drain("app", time.Second) {
		t.Fatal("queue stuck")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("order: %v", got)
	}
}

func TestMultipleDestinationsIndependent(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	fnA, readA := collector()
	d.SetRoute("a", fnA)
	// Destination b has no route: must not block a.
	_, _ = d.Send("b", []byte("stuck"))
	_, _ = d.Send("a", []byte("flows"))
	if !d.Drain("a", time.Second) {
		t.Fatal("a blocked by b")
	}
	if got := readA(); len(got) != 1 {
		t.Fatalf("a got %v", got)
	}
	if d.Pending("b") != 1 {
		t.Fatal("b should still be queued")
	}
}

func TestSendAfterStop(t *testing.T) {
	d := New(Config{})
	d.Stop()
	if _, err := d.Send("app", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v", err)
	}
}

func TestClearRoute(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	fn, read := collector()
	d.SetRoute("app", fn)
	d.ClearRoute("app")
	_, _ = d.Send("app", []byte("held"))
	time.Sleep(30 * time.Millisecond)
	if len(read()) != 0 {
		t.Fatal("delivered without route")
	}
	d.SetRoute("app", fn)
	if !d.Drain("app", time.Second) {
		t.Fatal("held message lost")
	}
}

func TestSendValidation(t *testing.T) {
	d := New(Config{})
	defer d.Stop()
	if _, err := d.Send("", []byte("x")); err == nil {
		t.Fatal("empty destination accepted")
	}
}

// Property: for any batch of payloads, every message is delivered exactly
// once and in order, even when the route flaps mid-stream.
func TestQuickExactlyOnceInOrder(t *testing.T) {
	f := func(payloads [][]byte, flapAt uint8) bool {
		if len(payloads) == 0 || len(payloads) > 40 {
			return true
		}
		d := New(Config{RetryInterval: time.Millisecond})
		defer d.Stop()
		var mu sync.Mutex
		var got [][]byte
		deliver := func(m Message) error {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, m.Body)
			return nil
		}
		d.SetRoute("app", deliver)
		for i, p := range payloads {
			if uint8(i) == flapAt%uint8(len(payloads)+1) {
				d.ClearRoute("app")
				d.SetRoute("app", deliver)
			}
			if _, err := d.Send("app", p); err != nil {
				return false
			}
		}
		if !d.Drain("app", 5*time.Second) {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if len(got) != len(payloads) {
			return false
		}
		for i := range payloads {
			if string(got[i]) != string(payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// refPayload is a refcounted broadcast payload for Forget/drop tests.
type refPayload struct {
	mu       sync.Mutex
	released int
}

func (p *refPayload) Release() {
	p.mu.Lock()
	p.released++
	p.mu.Unlock()
}

func (p *refPayload) releases() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.released
}

// TestForgetRetiresShard: Forget must remove the destination's shard
// from the stripe map (so churning destinations do not accumulate) and
// let the same name start fresh afterwards.
func TestForgetRetiresShard(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	defer d.Stop()
	fn, read := collector()
	d.SetRoute("sub-1", fn)
	if _, err := d.Send("sub-1", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if !d.Drain("sub-1", time.Second) {
		t.Fatal("not delivered")
	}
	d.Forget("sub-1")
	if s := d.lookup("sub-1"); s != nil {
		t.Fatal("shard survived Forget")
	}
	// The name is reusable: a new shard forms with its own route.
	d.SetRoute("sub-1", fn)
	if _, err := d.Send("sub-1", []byte("b")); err != nil {
		t.Fatal(err)
	}
	if !d.Drain("sub-1", time.Second) {
		t.Fatal("re-created destination not delivered")
	}
	if got := read(); len(got) != 2 || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

// TestForgetDropsQueuedAndReleasesPayloads: messages still queued at
// Forget resolve as Dropped and hand back their payload reference.
func TestForgetDropsQueuedAndReleasesPayloads(t *testing.T) {
	d := New(Config{RetryInterval: time.Hour}) // no sweeps mid-test
	defer d.Stop()
	p := &refPayload{}
	// No route: both messages queue.
	if n, err := d.Broadcast([]string{"ghost", "ghost"}, p); err != nil || n != 2 {
		t.Fatalf("Broadcast = %d, %v", n, err)
	}
	if d.Pending("ghost") != 2 {
		t.Fatalf("pending = %d", d.Pending("ghost"))
	}
	d.Forget("ghost")
	if d.Pending("ghost") != 0 {
		t.Fatalf("pending after Forget = %d", d.Pending("ghost"))
	}
	if got := p.releases(); got != 2 {
		t.Fatalf("payload releases = %d, want 2", got)
	}
	if st := d.Stats(); st.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", st.Dropped)
	}
}

// TestBroadcastReportsEnqueuedCount: the count is what payload
// refcounting settles against — skipped empties must not inflate it.
func TestBroadcastReportsEnqueuedCount(t *testing.T) {
	d := New(Config{RetryInterval: 2 * time.Millisecond})
	fn, _ := collector()
	d.SetRoute("a", fn)
	if n, err := d.Broadcast([]string{"a", "", "a"}, nil); err != nil || n != 2 {
		t.Fatalf("Broadcast = %d, %v; want 2, nil", n, err)
	}
	d.Stop()
	if n, err := d.Broadcast([]string{"a"}, nil); err != ErrClosed || n != 0 {
		t.Fatalf("Broadcast after Stop = %d, %v; want 0, ErrClosed", n, err)
	}
}

package diverter

import (
	"strconv"
	"time"
)

// Broadcast enqueues one payload-carrying message per destination — the
// batch ingress the OPC data plane fans change batches out through. The
// payload is shared by reference across all destinations: no body copy,
// no per-destination serialization. Callers that need to reclaim the
// payload (e.g. a pooled batch) refcount it themselves and release on
// terminal delivery outcomes.
//
// Each destination still gets its own message ID, queue slot, ledger
// obligation, and retry/backoff state, so per-destination FIFO and the
// no-acked-loss invariant hold exactly as for Send. Stats and telemetry
// are flushed once per call rather than once per destination.
//
// The returned count is how many destinations were actually enqueued: a
// Stop racing the loop can cut it short after some (ErrClosed with a
// nonzero count), and empty destination names are skipped. Callers that
// refcount the payload MUST settle the count against this return — the
// enqueued messages' deliveries proceed regardless of the error.
func (d *Diverter) Broadcast(dests []string, payload any) (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	if len(dests) == 0 {
		return 0, nil
	}
	enq := 0
	for _, dest := range dests {
		if dest == "" {
			continue
		}
		id := "m" + strconv.FormatUint(d.nextID.Add(1), 10)
		s := d.shardFor(dest)
		now := time.Now()
		s.mu.Lock()
		if d.closed.Load() {
			s.mu.Unlock()
			break
		}
		s.dedup.maybeRotate(now)
		msg := msgPool.Get().(*Message)
		msg.ID, msg.Dest = id, dest
		msg.Body = msg.Body[:0]
		msg.Payload = payload
		msg.EnqueuedAt = now
		s.q.push(msg)
		push := s.scheduleLocked(now)
		s.mu.Unlock()

		s.stripe.depth.Add(1)
		if h := d.cfg.Ledger; h != nil {
			h.Enqueued(id, dest)
		}
		if push {
			d.rq.push(s)
		}
		enq++
	}
	if enq > 0 {
		d.stats.enqueued.Add(int64(enq))
		d.cfg.Instruments.QueueDepth.Add(int64(enq))
	}
	if d.closed.Load() {
		return enq, ErrClosed
	}
	return enq, nil
}

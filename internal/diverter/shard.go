package diverter

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the sharded diverter's building blocks: the per-
// destination shard (ring-buffer FIFO + route + dedup + backoff state),
// the lock stripes the destination map is split across, the O(1) ring
// buffer itself, the incremental-expiry dedup index, and the run queue
// idle delivery workers steal ready shards from.

// ring is a FIFO of queued messages with O(1) push/pop. The backing
// array's length is always a power of two (or zero), so index wrapping is
// a mask; it doubles when full and halves when three-quarters empty so a
// burst does not pin its high-water allocation forever.
type ring struct {
	buf  []*Message
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) push(m *Message) {
	if r.n == len(r.buf) {
		r.resize(r.grown())
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = m
	r.n++
}

func (r *ring) grown() int {
	if len(r.buf) == 0 {
		return 8
	}
	return len(r.buf) * 2
}

func (r *ring) resize(capacity int) {
	nb := make([]*Message, capacity)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

func (r *ring) peek() *Message {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

func (r *ring) pop() *Message {
	if r.n == 0 {
		return nil
	}
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	if len(r.buf) >= 64 && r.n <= len(r.buf)/4 {
		r.resize(len(r.buf) / 2)
	}
	return m
}

// unshift pushes msgs back at the queue front, preserving their order —
// the undelivered tail of a failed batch returns ahead of anything that
// arrived during the attempt, keeping destination FIFO intact.
func (r *ring) unshift(msgs []*Message) {
	if len(msgs) == 0 {
		return
	}
	for len(r.buf)-r.n < len(msgs) {
		r.resize(r.grown())
	}
	for i := len(msgs) - 1; i >= 0; i-- {
		r.head = (r.head - 1) & (len(r.buf) - 1)
		r.buf[r.head] = msgs[i]
		r.n++
	}
}

// remove deletes target wherever it sits, preserving order. The worker
// only ever removes the head it is currently serving, so the scan is a
// defensive rare path, not a hot one.
func (r *ring) remove(target *Message) bool {
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head+i)&(len(r.buf)-1)] != target {
			continue
		}
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&(len(r.buf)-1)] = r.buf[(r.head+j+1)&(len(r.buf)-1)]
		}
		r.buf[(r.head+r.n-1)&(len(r.buf)-1)] = nil
		r.n--
		return true
	}
	return false
}

// each visits queued messages front to back.
func (r *ring) each(fn func(*Message)) {
	for i := 0; i < r.n; i++ {
		fn(r.buf[(r.head+i)&(len(r.buf)-1)])
	}
}

// dedup remembers delivered message IDs with two generation maps that
// rotate every window: an ID is remembered for at least DedupWindow and
// at most twice that, and expiry is a pointer swap (amortized O(1) per
// enqueue via the maybeRotate check) — never a full scan stalling the
// shard. Entries carry no timestamps, so lookups and inserts are plain
// set operations.
type dedup struct {
	window     time.Duration
	curr, prev map[string]struct{}
	lastRotate time.Time
}

func newDedup(window time.Duration, now time.Time) dedup {
	return dedup{window: window, curr: make(map[string]struct{}), lastRotate: now}
}

// maybeRotate ages the generations. Called on every enqueue and batch
// grab, so rotation keeps up with traffic; the sweeper covers idle
// shards. After a long idle both generations are stale and are dropped
// together.
func (dd *dedup) maybeRotate(now time.Time) {
	age := now.Sub(dd.lastRotate)
	if age < dd.window {
		return
	}
	if age >= 2*dd.window {
		dd.prev = nil
	} else {
		dd.prev = dd.curr
	}
	// Pre-size to the outgoing generation: under steady traffic the next
	// window remembers about as many IDs, so inserts never rehash.
	dd.curr = make(map[string]struct{}, len(dd.prev))
	dd.lastRotate = now
}

// seen reports whether id was delivered inside the remembered window.
func (dd *dedup) seen(id string) bool {
	if _, ok := dd.curr[id]; ok {
		return true
	}
	_, ok := dd.prev[id]
	return ok
}

func (dd *dedup) add(id string) { dd.curr[id] = struct{}{} }

// markIfNew marks id delivered and reports whether it was unmarked before
// — the check and the insert share one map operation on the hot path.
func (dd *dedup) markIfNew(id string) bool {
	if _, ok := dd.prev[id]; ok {
		return false
	}
	before := len(dd.curr)
	dd.curr[id] = struct{}{}
	return len(dd.curr) != before
}

// remove forgets id in both generations — the un-mark for a message that
// was optimistically marked at batch grab but whose delivery failed.
func (dd *dedup) remove(id string) {
	delete(dd.curr, id)
	delete(dd.prev, id)
}

func (dd *dedup) size() int { return len(dd.curr) + len(dd.prev) }

// shard is one destination's delivery state. Everything below mu is
// guarded by it; the scratch slice is additionally owned by whichever
// worker holds the scheduled flag, so it is reused batch to batch
// without reallocation or locking during the flush.
type shard struct {
	dest   string
	stripe *stripe

	mu      sync.Mutex
	q       ring
	route   DeliverFunc
	dedup   dedup
	rng     *rand.Rand // backoff jitter; guarded by mu
	drained *sync.Cond // broadcast when the shard empties (and on timeout/Stop)

	// inflight counts messages popped into a worker's batch but not yet
	// finalized — still delivery obligations, so Pending and Drain count
	// them even though they are momentarily out of the ring.
	inflight int

	// scheduled is true while the shard sits on the run queue or a worker
	// is serving it — at most one worker owns a shard at a time, which is
	// what preserves per-destination FIFO order.
	scheduled bool

	// scratchBatch holds one delivery batch (owned via scheduled).
	scratchBatch []*Message
}

// runnableLocked reports whether the shard has deliverable work: a
// non-empty queue, a route, and a head message not in backoff.
func (s *shard) runnableLocked(now time.Time) bool {
	if s.q.len() == 0 || s.route == nil {
		return false
	}
	head := s.q.peek()
	return head.notBefore.IsZero() || !now.Before(head.notBefore)
}

// scheduleLocked claims the shard for delivery if it is runnable and not
// already claimed; the caller must push it onto the run queue (after
// releasing s.mu) when true is returned.
func (s *shard) scheduleLocked(now time.Time) bool {
	if s.scheduled || !s.runnableLocked(now) {
		return false
	}
	s.scheduled = true
	return true
}

// backoffLocked computes the wait before the next attempt: exponential in
// the attempt count, clamped, with ±25% seeded jitter so parallel
// destinations do not retry in lockstep. With backoff disabled the wait
// is one retry interval — the legacy retry-every-sweep cadence.
func (s *shard) backoffLocked(cfg *Config, attempts int) time.Duration {
	base := cfg.RetryBackoff
	if base <= 0 {
		return cfg.RetryInterval
	}
	shift := attempts - 1
	if shift > 20 {
		shift = 20
	}
	wait := base << shift
	if wait > cfg.RetryBackoffMax {
		wait = cfg.RetryBackoffMax
	}
	jitter := time.Duration(s.rng.Int63n(int64(wait)/2+1)) - wait/4
	return wait + jitter
}

// stripe is one slice of the destination map. Send only contends with
// sends to destinations hashing to the same stripe (and only for the map
// lookup — queue operations take the shard's own lock).
type stripe struct {
	mu     sync.RWMutex
	shards map[string]*shard
	order  []*shard // stable snapshot for sweeps and depth reads

	// depth counts queued messages across the stripe's shards (the
	// per-shard queue-depth gauge the telemetry collector exports).
	depth atomic.Int64
}

// snapshot returns the stripe's shards without holding the lock during
// iteration (order is append-only, so a copied header is a consistent
// prefix).
func (st *stripe) snapshot() []*shard {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.order
}

// stripeHash is FNV-1a over the destination name.
func stripeHash(dest string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(dest); i++ {
		h = (h ^ uint32(dest[i])) * 16777619
	}
	return h
}

func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// runqueue is the shared queue of ready shards. Idle workers steal the
// oldest ready shard; a shard appears at most once (the scheduled flag),
// so the queue length is bounded by the destination count.
type runqueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*shard
	closed bool
}

func newRunqueue() *runqueue {
	rq := &runqueue{}
	rq.cond = sync.NewCond(&rq.mu)
	return rq
}

func (rq *runqueue) push(s *shard) {
	rq.mu.Lock()
	if rq.closed {
		rq.mu.Unlock()
		return
	}
	rq.q = append(rq.q, s)
	rq.mu.Unlock()
	rq.cond.Signal()
}

// pop blocks until a shard is ready or the queue closes.
func (rq *runqueue) pop() (*shard, bool) {
	rq.mu.Lock()
	defer rq.mu.Unlock()
	for len(rq.q) == 0 && !rq.closed {
		rq.cond.Wait()
	}
	if rq.closed {
		return nil, false
	}
	s := rq.q[0]
	rq.q[0] = nil
	rq.q = rq.q[1:]
	return s, true
}

func (rq *runqueue) close() {
	rq.mu.Lock()
	rq.closed = true
	rq.mu.Unlock()
	rq.cond.Broadcast()
}

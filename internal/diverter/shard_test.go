package diverter

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// --- ring buffer: O(1) FIFO with growth, shrink, and ordered removal ---

func ringIDs(r *ring) []string {
	var out []string
	r.each(func(m *Message) { out = append(out, m.ID) })
	return out
}

func TestRingFIFOAcrossGrowth(t *testing.T) {
	var r ring
	for i := 0; i < 100; i++ {
		r.push(&Message{ID: fmt.Sprintf("m%03d", i)})
	}
	if r.len() != 100 {
		t.Fatalf("len = %d", r.len())
	}
	for i := 0; i < 100; i++ {
		m := r.pop()
		if m == nil || m.ID != fmt.Sprintf("m%03d", i) {
			t.Fatalf("pop %d: %+v", i, m)
		}
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring")
	}
}

func TestRingWrapAround(t *testing.T) {
	// Interleave pushes and pops so head walks around the buffer
	// repeatedly while the buffer stays small.
	var r ring
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			r.push(&Message{ID: fmt.Sprintf("m%d", next)})
			next++
		}
		for i := 0; i < 2; i++ {
			m := r.pop()
			if m.ID != fmt.Sprintf("m%d", want) {
				t.Fatalf("round %d: got %s want m%d", round, m.ID, want)
			}
			want++
		}
	}
	for r.len() > 0 {
		m := r.pop()
		if m.ID != fmt.Sprintf("m%d", want) {
			t.Fatalf("drain: got %s want m%d", m.ID, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("popped %d of %d", want, next)
	}
}

func TestRingShrinksAfterBurst(t *testing.T) {
	var r ring
	for i := 0; i < 1024; i++ {
		r.push(&Message{ID: fmt.Sprintf("m%d", i)})
	}
	grown := len(r.buf)
	for i := 0; i < 1020; i++ {
		r.pop()
	}
	if len(r.buf) >= grown {
		t.Fatalf("buffer did not shrink after burst: cap %d -> %d", grown, len(r.buf))
	}
	// Remaining elements still in order.
	if got := ringIDs(&r); len(got) != 4 || got[0] != "m1020" || got[3] != "m1023" {
		t.Fatalf("tail after shrink: %v", got)
	}
}

func TestRingRemovePreservesOrder(t *testing.T) {
	var r ring
	msgs := make([]*Message, 10)
	for i := range msgs {
		msgs[i] = &Message{ID: fmt.Sprintf("m%d", i)}
		r.push(msgs[i])
	}
	if !r.remove(msgs[4]) {
		t.Fatal("remove failed")
	}
	if r.remove(msgs[4]) {
		t.Fatal("double remove succeeded")
	}
	want := []string{"m0", "m1", "m2", "m3", "m5", "m6", "m7", "m8", "m9"}
	got := ringIDs(&r)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after remove: %v", got)
	}
}

// --- dedup: generational rotation, no full-scan pauses ---

func TestDedupGenerationalExpiry(t *testing.T) {
	w := time.Second
	base := time.Unix(0, 0)
	dd := newDedup(w, base)
	dd.add("a")
	if !dd.seen("a") {
		t.Fatal("fresh entry not seen")
	}
	// Inside the window: no rotation, still remembered.
	dd.maybeRotate(base.Add(w / 2))
	if !dd.seen("a") {
		t.Fatal("entry lost before the window elapsed")
	}
	// One window: the entry ages into the previous generation but still
	// suppresses (IDs are remembered for up to 2x the window).
	dd.maybeRotate(base.Add(w + w/10))
	if !dd.seen("a") {
		t.Fatal("entry forgotten after a single rotation")
	}
	dd.add("b")
	// Second rotation: "a" falls off the end, "b" ages into prev.
	dd.maybeRotate(base.Add(2*w + w/5))
	if dd.seen("a") {
		t.Fatal("entry survived two rotations")
	}
	if !dd.seen("b") {
		t.Fatal("younger entry lost too early")
	}
	if dd.size() != 1 {
		t.Fatalf("size = %d, want 1", dd.size())
	}
}

func TestDedupLongIdleDropsBothGenerations(t *testing.T) {
	w := time.Second
	base := time.Unix(1000, 0)
	dd := newDedup(w, base)
	dd.add("x")
	// After an idle gap longer than two windows, one rotate call must be
	// enough to forget everything — a single generation shift would park
	// the stale entries in prev and wrongly suppress a resend.
	dd.maybeRotate(base.Add(5 * w))
	if dd.seen("x") {
		t.Fatal("stale entry still suppressing after long idle")
	}
	if dd.size() != 0 {
		t.Fatalf("size = %d, want 0", dd.size())
	}
}

func TestDedupRemoveUnmarks(t *testing.T) {
	// remove is the failure-path un-mark for optimistic marking: it must
	// forget the ID whichever generation holds it.
	w := time.Second
	base := time.Unix(2000, 0)
	dd := newDedup(w, base)
	dd.add("cur")
	dd.add("old")
	dd.maybeRotate(base.Add(w + w/10)) // "old" ages into prev
	dd.add("cur")                      // re-mark in the fresh current gen
	dd.remove("cur")
	dd.remove("old")
	if dd.seen("cur") || dd.seen("old") {
		t.Fatal("removed IDs still suppressing")
	}
}

func TestRingUnshiftPreservesOrder(t *testing.T) {
	var r ring
	r.push(&Message{ID: "c"})
	r.push(&Message{ID: "d"})
	r.unshift([]*Message{{ID: "x"}, {ID: "y"}})
	want := []string{"x", "y", "c", "d"}
	if got := ringIDs(&r); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after unshift: %v, want %v", got, want)
	}
	// Unshift into an empty ring allocates and keeps order.
	var r2 ring
	r2.unshift([]*Message{{ID: "a"}, {ID: "b"}, {ID: "c"}})
	if got := ringIDs(&r2); fmt.Sprint(got) != fmt.Sprint([]string{"a", "b", "c"}) {
		t.Fatalf("unshift into empty ring: %v", got)
	}
}

// --- striping and shard-level accounting ---

func TestStripeDepthsSumToQueued(t *testing.T) {
	d := New(Config{Shards: 8})
	defer d.Stop()
	// No routes: everything stays queued.
	total := 0
	for i := 0; i < 20; i++ {
		dest := fmt.Sprintf("dest%d", i)
		for j := 0; j <= i%3; j++ {
			if _, err := d.Send(dest, []byte("x")); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	var sum int64
	for _, v := range d.StripeDepths() {
		sum += v
	}
	if sum != int64(total) {
		t.Fatalf("stripe depths sum to %d, want %d", sum, total)
	}
	if d.NumStripes() != 8 {
		t.Fatalf("NumStripes = %d", d.NumStripes())
	}
}

func TestShardsRoundsUpToPowerOfTwo(t *testing.T) {
	d := New(Config{Shards: 5})
	defer d.Stop()
	if d.NumStripes() != 8 {
		t.Fatalf("NumStripes = %d, want 8", d.NumStripes())
	}
}

func TestBatchSizeInstrumentObservesBatches(t *testing.T) {
	// A burst enqueued before the route appears must retire in few large
	// batches, not one telemetry update per message.
	reg := telemetry.NewRegistry()
	hist := reg.Histogram("batch", 1, 2, 4, 8, 16, 32, 64, 128)
	d := New(Config{Instruments: Instruments{BatchSize: hist}})
	defer d.Stop()
	for i := 0; i < 200; i++ {
		if _, err := d.Send("app", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	fn, _ := collector()
	d.SetRoute("app", fn)
	if !d.Drain("app", 5*time.Second) {
		t.Fatal("drain")
	}
	batches := hist.Count()
	if batches == 0 {
		t.Fatal("no batches observed")
	}
	if batches > 100 {
		t.Fatalf("200 messages retired in %d batches: batching is not amortizing", batches)
	}
}

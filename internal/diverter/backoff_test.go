package diverter

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testLedger records the lifecycle calls a LedgerHook receives.
type testLedger struct {
	mu        sync.Mutex
	enqueued  map[string]int
	delivered map[string]int
	dropped   map[string]int
}

func newTestLedger() *testLedger {
	return &testLedger{
		enqueued:  make(map[string]int),
		delivered: make(map[string]int),
		dropped:   make(map[string]int),
	}
}

func (l *testLedger) Enqueued(id, dest string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.enqueued[id]++
}

func (l *testLedger) Delivered(id, dest string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.delivered[id]++
}

func (l *testLedger) Dropped(id, dest string, attempts int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.dropped[id]++
}

// outstanding reports enqueued ids with neither a Delivered nor a Dropped
// resolution.
func (l *testLedger) outstanding() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	for id := range l.enqueued {
		if l.delivered[id] == 0 && l.dropped[id] == 0 {
			out = append(out, id)
		}
	}
	return out
}

func TestLedgerAccountsEveryMessage(t *testing.T) {
	ledger := newTestLedger()
	d := New(Config{RetryInterval: 2 * time.Millisecond, Ledger: ledger})
	defer d.Stop()

	var fail atomic.Bool
	fail.Store(true)
	d.SetRoute("app", func(m Message) error {
		if fail.Load() {
			return errors.New("down")
		}
		return nil
	})

	for i := 0; i < 5; i++ {
		if _, err := d.Send("app", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond) // let some attempts fail
	fail.Store(false)
	if !d.Drain("app", time.Second) {
		t.Fatal("queue did not drain")
	}
	if out := ledger.outstanding(); len(out) != 0 {
		t.Fatalf("unresolved obligations: %v", out)
	}
	ledger.mu.Lock()
	defer ledger.mu.Unlock()
	if len(ledger.delivered) != 5 || len(ledger.dropped) != 0 {
		t.Fatalf("delivered=%d dropped=%d", len(ledger.delivered), len(ledger.dropped))
	}
}

func TestLedgerRecordsDrops(t *testing.T) {
	ledger := newTestLedger()
	d := New(Config{RetryInterval: time.Millisecond, MaxAttempts: 3, Ledger: ledger})
	defer d.Stop()
	d.SetRoute("app", func(m Message) error { return errors.New("always down") })

	if _, err := d.Send("app", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for d.Stats().Dropped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ledger.mu.Lock()
	defer ledger.mu.Unlock()
	if len(ledger.dropped) != 1 {
		t.Fatalf("dropped ledger entries = %d", len(ledger.dropped))
	}
}

// TestBackoffSpacesRetries: with backoff on, a dead route sees far fewer
// attempts over a window than retry-every-sweep would produce, and the
// message still delivers once the route heals.
func TestBackoffSpacesRetries(t *testing.T) {
	var attempts atomic.Int64
	var fail atomic.Bool
	fail.Store(true)
	d := New(Config{
		RetryInterval: time.Millisecond,
		RetryBackoff:  20 * time.Millisecond,
		Seed:          7,
	})
	defer d.Stop()
	d.SetRoute("app", func(m Message) error {
		attempts.Add(1)
		if fail.Load() {
			return errors.New("down")
		}
		return nil
	})

	if _, err := d.Send("app", []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	// Exponential 20ms backoff permits at most ~3 attempts in 60ms; the
	// 1ms sweep without backoff would have made dozens.
	if n := attempts.Load(); n > 5 {
		t.Fatalf("%d attempts in 60ms despite backoff", n)
	}
	fail.Store(false)
	d.SetRoute("app", func(m Message) error {
		attempts.Add(1)
		return nil
	})
	if !d.Drain("app", 2*time.Second) {
		t.Fatal("message never delivered after heal")
	}
}

// TestSetRouteClearsBackoff: re-pointing a destination retries immediately
// even if the head message was deep into exponential backoff.
func TestSetRouteClearsBackoff(t *testing.T) {
	d := New(Config{
		RetryInterval: time.Millisecond,
		RetryBackoff:  500 * time.Millisecond, // long enough to dominate the test
		Seed:          7,
	})
	defer d.Stop()
	d.SetRoute("app", func(m Message) error { return errors.New("down") })
	if _, err := d.Send("app", []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for d.Stats().Retries == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	fn, read := collector()
	start := time.Now()
	d.SetRoute("app", fn)
	if !d.Drain("app", time.Second) {
		t.Fatal("queue did not drain after rebind")
	}
	if waited := time.Since(start); waited > 250*time.Millisecond {
		t.Fatalf("rebind waited out the backoff: %v", waited)
	}
	if got := read(); len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

// TestDrainWakesPromptly: Drain returns quickly after the last delivery
// rather than sleeping out a poll interval.
func TestDrainWakesPromptly(t *testing.T) {
	d := New(Config{RetryInterval: 200 * time.Millisecond}) // slow sweeps
	defer d.Stop()
	fn, _ := collector()
	d.SetRoute("app", fn)
	if _, err := d.Send("app", []byte("x")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if !d.Drain("app", 2*time.Second) {
		t.Fatal("drain failed")
	}
	// The kick delivers immediately; only a polling Drain would burn a
	// whole 100ms+ sweep interval here.
	if waited := time.Since(start); waited > 150*time.Millisecond {
		t.Fatalf("drain took %v; expected event-driven wakeup", waited)
	}
}

// TestDrainTimesOut: a never-deliverable queue respects the deadline.
func TestDrainTimesOut(t *testing.T) {
	d := New(Config{RetryInterval: time.Millisecond})
	defer d.Stop()
	if _, err := d.Send("app", []byte("x")); err != nil { // no route
		t.Fatal(err)
	}
	start := time.Now()
	if d.Drain("app", 50*time.Millisecond) {
		t.Fatal("drain reported success with no route")
	}
	if waited := time.Since(start); waited < 40*time.Millisecond || waited > time.Second {
		t.Fatalf("drain waited %v", waited)
	}
}

// TestDrainUnblocksOnStop: Stop wakes a blocked Drain instead of leaving
// it to the timeout.
func TestDrainUnblocksOnStop(t *testing.T) {
	d := New(Config{RetryInterval: time.Millisecond})
	if _, err := d.Send("app", []byte("x")); err != nil { // no route
		t.Fatal(err)
	}
	done := make(chan bool, 1)
	go func() { done <- d.Drain("app", 10*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	d.Stop()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("drain reported empty queue after Stop discarded it")
		}
	case <-time.After(time.Second):
		t.Fatal("Drain still blocked after Stop")
	}
}

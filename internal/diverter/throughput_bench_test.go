package diverter

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkDiverterThroughput is the multi-producer / multi-destination
// aggregate-throughput suite: P producer goroutines spray b.N messages
// round-robin across D destinations, and the timer stops only when every
// destination has drained. Sub-benchmarks pair the sharded implementation
// against the retained single-pump baseline on the same grid, so
// `make bench-diverter` (cmd/oftt-benchdiff) can compute the speedup per
// cell from one run. ns/op is the inverse of aggregate msgs/sec; the
// msgs/s metric is reported explicitly for the JSON record.
//
// The grid has two delivery-cost modes:
//
//   - svc=0s: a free handler, measuring pure queue/lock/dedup overhead —
//     the per-message bookkeeping cost.
//   - svc=1ms: an RPC-shaped handler that sleeps ~1ms per delivery, the
//     millisecond-scale DCOM/MSMQ hop OFTT's diverter actually fronts.
//     Here the single pump serializes every destination's waits behind
//     one goroutine, while the sharded pool overlaps them — the
//     head-of-line pathology this package removes. This is the headline
//     cell: delivery concurrency, not lock micro-costs, is what a
//     store-and-forward middleware is for.
//
// Run: go test -run xxx -bench BenchmarkDiverterThroughput -benchmem ./internal/diverter
// (use -benchtime Nx: large N for svc=0s, small N for svc=1ms — see the
// bench-diverter Makefile target).
var benchGrid = []struct{ p, d int }{{1, 1}, {4, 4}, {8, 8}}

func BenchmarkDiverterThroughput(b *testing.B) {
	for _, svc := range []time.Duration{0, time.Millisecond} {
		for _, g := range benchGrid {
			g, svc := g, svc
			b.Run(fmt.Sprintf("impl=sharded/p=%d/d=%d/svc=%s", g.p, g.d, svc), func(b *testing.B) {
				benchSharded(b, g.p, g.d, svc)
			})
		}
		for _, g := range benchGrid {
			g, svc := g, svc
			b.Run(fmt.Sprintf("impl=singlepump/p=%d/d=%d/svc=%s", g.p, g.d, svc), func(b *testing.B) {
				benchSinglePump(b, g.p, g.d, svc)
			})
		}
	}
}

var benchBody = []byte("0123456789abcdef0123456789abcdef") // 32B field I/O payload

// benchDedupWindow is deliberately shorter than a benchmark run so the
// dedup-expiry path — the old full-scan stall, the new generation swap —
// is actually on the clock. With the 30s default a short run never
// expires anything and both indexes just grow without bound, which
// represents no steady state at all.
const benchDedupWindow = 250 * time.Millisecond

// benchHandler builds the delivery endpoint both implementations get: an
// optional service wait (the simulated RPC) and a delivery count.
func benchHandler(svc time.Duration, delivered *atomic.Int64) DeliverFunc {
	return func(Message) error {
		if svc > 0 {
			time.Sleep(svc)
		}
		delivered.Add(1)
		return nil
	}
}

func benchSharded(b *testing.B, producers, dests int, svc time.Duration) {
	d := New(Config{RetryInterval: 5 * time.Millisecond, DedupWindow: benchDedupWindow})
	defer d.Stop()
	var delivered atomic.Int64
	names := make([]string, dests)
	for i := range names {
		names[i] = fmt.Sprintf("dest%d", i)
		d.SetRoute(names[i], benchHandler(svc, &delivered))
	}
	b.ReportAllocs()
	b.ResetTimer()
	runProducers(b, producers, func(p, i int) error {
		_, err := d.Send(names[(p+i)%dests], benchBody)
		return err
	})
	for _, name := range names {
		if !d.Drain(name, 120*time.Second) {
			b.Fatalf("%s did not drain", name)
		}
	}
	b.StopTimer()
	if got := delivered.Load(); got != int64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

func benchSinglePump(b *testing.B, producers, dests int, svc time.Duration) {
	p := newSinglePump(5*time.Millisecond, benchDedupWindow)
	defer p.stopAll()
	var delivered atomic.Int64
	names := make([]string, dests)
	for i := range names {
		names[i] = fmt.Sprintf("dest%d", i)
		p.setRoute(names[i], benchHandler(svc, &delivered))
	}
	b.ReportAllocs()
	b.ResetTimer()
	runProducers(b, producers, func(pr, i int) error {
		_, err := p.send(names[(pr+i)%dests], benchBody)
		return err
	})
	for _, name := range names {
		if !p.drain(name, 120*time.Second) {
			b.Fatalf("%s did not drain", name)
		}
	}
	b.StopTimer()
	if got := delivered.Load(); got != int64(b.N) {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// runProducers splits b.N sends across P goroutines and waits for all.
func runProducers(b *testing.B, producers int, send func(p, i int) error) {
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		n := b.N / producers
		if p < b.N%producers {
			n++
		}
		wg.Add(1)
		go func(p, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := send(p, i); err != nil {
					b.Error(err)
					return
				}
			}
		}(p, n)
	}
	wg.Wait()
}

// Package diverter implements OFTT's Message Diverter (Section 2.2.3): it
// makes the primary/backup pair a single consistent logical unit by storing
// and forwarding all inbound I/O messages to the current primary copy of
// the application. If a message is sent during a switchover, non-delivery
// is detected and the message is retried — the behaviour the original
// implementation obtained from Microsoft Message Queue.
//
// Delivery is at-least-once with duplicate suppression by message ID, so a
// retry that races a successful delivery does not double-apply.
package diverter

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Errors.
var (
	// ErrNoRoute means no primary endpoint is registered for the
	// destination; messages queue until one appears.
	ErrNoRoute = errors.New("diverter: no route to destination")

	// ErrClosed is returned after Stop.
	ErrClosed = errors.New("diverter: closed")

	// ErrDropped is recorded when a message exhausts MaxAttempts.
	ErrDropped = errors.New("diverter: message dropped after max attempts")
)

// Message is one queued unit.
type Message struct {
	ID         string
	Dest       string
	Body       []byte
	EnqueuedAt time.Time
	Attempts   int

	// notBefore delays the next delivery attempt (redelivery backoff).
	// Zero means deliver at the next sweep.
	notBefore time.Time
}

// LedgerHook observes the diverter's message lifecycle: every enqueue
// creates a delivery obligation that must end in exactly one Delivered or
// Dropped call. Chaos invariant checkers implement this to prove no
// acknowledged message is silently lost. Hooks are called outside the
// diverter's lock and must be safe for concurrent use.
type LedgerHook interface {
	Enqueued(id, dest string)
	Delivered(id, dest string)
	Dropped(id, dest string, attempts int)
}

// DeliverFunc delivers a message to the current primary; a nil return acks
// it. Errors leave the message queued for retry.
type DeliverFunc func(msg Message) error

// Config parameterizes a Diverter.
type Config struct {
	// RetryInterval is the redelivery scan period (default 20ms).
	RetryInterval time.Duration
	// DedupWindow is how long delivered message IDs are remembered
	// (default 30s).
	DedupWindow time.Duration
	// MaxAttempts drops a message after this many failed deliveries;
	// 0 retries forever.
	MaxAttempts int

	// RetryBackoff enables exponential redelivery backoff: after the Nth
	// failed attempt a message waits RetryBackoff<<(N-1), clamped to
	// RetryBackoffMax, plus jitter, before its next attempt. Zero keeps
	// the legacy retry-every-sweep behaviour. A route change (SetRoute)
	// clears pending backoff so rebound destinations retry immediately.
	RetryBackoff time.Duration
	// RetryBackoffMax clamps the exponential backoff (default 50x
	// RetryBackoff).
	RetryBackoffMax time.Duration
	// Seed drives the backoff jitter; the same seed yields the same retry
	// timeline (deterministic chaos replays depend on this). Zero seeds
	// from 1.
	Seed int64

	// Ledger, when set, observes every message's lifecycle (enqueue,
	// delivery, drop) for external accounting such as loss invariants.
	Ledger LedgerHook

	// Instruments are optional metrics; zero-value fields record nothing.
	Instruments Instruments
}

// Instruments are the diverter's registry-resolved metrics.
type Instruments struct {
	// QueueDepth tracks messages currently queued across destinations.
	QueueDepth *telemetry.Gauge
	// Delivered counts successful deliveries.
	Delivered *telemetry.Counter
	// Redelivered counts retry attempts after a failed delivery.
	Redelivered *telemetry.Counter
	// Dropped counts messages abandoned after MaxAttempts.
	Dropped *telemetry.Counter
	// DivertLatency observes enqueue → successful delivery, in
	// microseconds: the store-and-forward cost a message pays, which
	// spikes across a switchover.
	DivertLatency *telemetry.Histogram
}

// Stats are the diverter's counters.
type Stats struct {
	Enqueued    int64
	Delivered   int64
	Retries     int64
	DupDropped  int64
	Dropped     int64
	NoRouteErrs int64
}

// Diverter is the store-and-forward router.
type Diverter struct {
	cfg Config

	mu        sync.Mutex
	pending   map[string][]*Message // dest -> FIFO
	routes    map[string]DeliverFunc
	delivered map[string]time.Time // msgID -> delivery time (dedup)
	closed    bool
	drained   *sync.Cond // broadcast on every dequeue and on Stop
	rng       *rand.Rand // jitter source; pump goroutine only
	nextID    atomic.Uint64

	stats struct {
		enqueued, delivered, retries, dupDropped, dropped, noRoute atomic.Int64
	}

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New creates and starts a diverter.
func New(cfg Config) *Diverter {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 20 * time.Millisecond
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 30 * time.Second
	}
	if cfg.RetryBackoff > 0 && cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 50 * cfg.RetryBackoff
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	d := &Diverter{
		cfg:       cfg,
		pending:   make(map[string][]*Message),
		routes:    make(map[string]DeliverFunc),
		delivered: make(map[string]time.Time),
		rng:       rand.New(rand.NewSource(seed)),
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	d.drained = sync.NewCond(&d.mu)
	go d.pump()
	return d
}

// Send enqueues a message for a logical destination and returns its ID.
// Delivery is asynchronous; the message survives routing gaps (e.g. a
// switchover in progress).
func (d *Diverter) Send(dest string, body []byte) (string, error) {
	id := "m" + strconv.FormatUint(d.nextID.Add(1), 10)
	return id, d.SendWithID(id, dest, body)
}

// msgPool recycles Message structs (and, when safe, their body buffers)
// across the store-and-forward path.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// recycle returns a message to the pool. Bodies that were handed to a
// DeliverFunc may be retained by the handler, so escaped messages abandon
// their backing array; only bodies that never left the diverter keep
// theirs for reuse.
func recycle(msg *Message, bodyEscaped bool) {
	if bodyEscaped {
		msg.Body = nil
	} else {
		msg.Body = msg.Body[:0]
	}
	msg.ID, msg.Dest = "", ""
	msg.EnqueuedAt = time.Time{}
	msg.notBefore = time.Time{}
	msg.Attempts = 0
	msgPool.Put(msg)
}

// SendWithID enqueues with a caller-chosen ID (idempotent resends).
func (d *Diverter) SendWithID(id, dest string, body []byte) error {
	if dest == "" {
		return fmt.Errorf("diverter: empty destination")
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if _, dup := d.delivered[id]; dup {
		d.mu.Unlock()
		d.stats.dupDropped.Add(1)
		return nil // already delivered: idempotent, and nothing was copied
	}
	msg := msgPool.Get().(*Message)
	msg.ID, msg.Dest = id, dest
	msg.Body = append(msg.Body[:0], body...)
	msg.EnqueuedAt = time.Now()
	d.pending[dest] = append(d.pending[dest], msg)
	d.mu.Unlock()

	d.stats.enqueued.Add(1)
	d.cfg.Instruments.QueueDepth.Add(1)
	if h := d.cfg.Ledger; h != nil {
		h.Enqueued(id, dest)
	}
	d.wake()
	return nil
}

// SetRoute points a destination at the current primary's delivery
// endpoint. The engine re-points this after a switchover. Pending backoff
// for the destination is cleared: a fresh route deserves an immediate
// attempt regardless of how the old one failed.
func (d *Diverter) SetRoute(dest string, fn DeliverFunc) {
	d.mu.Lock()
	d.routes[dest] = fn
	for _, m := range d.pending[dest] {
		m.notBefore = time.Time{}
	}
	d.mu.Unlock()
	d.wake()
}

// ClearRoute removes a destination's endpoint; messages queue meanwhile.
func (d *Diverter) ClearRoute(dest string) {
	d.mu.Lock()
	delete(d.routes, dest)
	d.mu.Unlock()
}

func (d *Diverter) wake() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

func (d *Diverter) pump() {
	defer close(d.done)
	t := time.NewTicker(d.cfg.RetryInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-d.kick:
		case <-t.C:
		}
		d.deliverBatch()
		d.expireDedup()
	}
}

// deliverBatch attempts every queued message once, in FIFO order per
// destination.
func (d *Diverter) deliverBatch() {
	d.mu.Lock()
	dests := make([]string, 0, len(d.pending))
	for dest := range d.pending {
		dests = append(dests, dest)
	}
	d.mu.Unlock()

	for _, dest := range dests {
		for {
			d.mu.Lock()
			queue := d.pending[dest]
			if len(queue) == 0 {
				delete(d.pending, dest)
				d.mu.Unlock()
				break
			}
			fn := d.routes[dest]
			msg := queue[0]
			if fn == nil {
				d.mu.Unlock()
				d.stats.noRoute.Add(1)
				break // keep queued until a route appears
			}
			if !msg.notBefore.IsZero() && time.Now().Before(msg.notBefore) {
				d.mu.Unlock()
				break // head backing off: preserve FIFO, retry when due
			}
			if _, dup := d.delivered[msg.ID]; dup {
				d.pending[dest] = queue[1:]
				d.drained.Broadcast()
				d.mu.Unlock()
				d.stats.dupDropped.Add(1)
				d.cfg.Instruments.QueueDepth.Add(-1)
				// A message that was never passed to a DeliverFunc may
				// safely donate its body buffer back to the pool.
				recycle(msg, msg.Attempts > 0)
				continue
			}
			msg.Attempts++
			attempts := msg.Attempts
			d.mu.Unlock()

			err := fn(*msg)

			d.mu.Lock()
			if err == nil {
				d.delivered[msg.ID] = time.Now()
				d.pending[dest] = dequeue(d.pending[dest], msg)
				d.drained.Broadcast()
				enqueuedAt := msg.EnqueuedAt
				id := msg.ID
				d.mu.Unlock()
				d.stats.delivered.Add(1)
				d.cfg.Instruments.Delivered.Inc()
				d.cfg.Instruments.QueueDepth.Add(-1)
				d.cfg.Instruments.DivertLatency.ObserveDuration(time.Since(enqueuedAt))
				recycle(msg, true) // handler saw the body; abandon it
				if h := d.cfg.Ledger; h != nil {
					h.Delivered(id, dest)
				}
				continue
			}
			// Failed delivery: retry later, unless exhausted.
			d.stats.retries.Add(1)
			d.cfg.Instruments.Redelivered.Inc()
			if d.cfg.MaxAttempts > 0 && attempts >= d.cfg.MaxAttempts {
				d.pending[dest] = dequeue(d.pending[dest], msg)
				d.drained.Broadcast()
				id := msg.ID
				d.mu.Unlock()
				d.stats.dropped.Add(1)
				d.cfg.Instruments.Dropped.Inc()
				d.cfg.Instruments.QueueDepth.Add(-1)
				recycle(msg, true)
				if h := d.cfg.Ledger; h != nil {
					h.Dropped(id, dest, attempts)
				}
				continue
			}
			msg.notBefore = time.Now().Add(d.backoffLocked(attempts))
			d.mu.Unlock()
			break // head-of-line blocked: preserve FIFO, retry next sweep
		}
	}
}

// backoffLocked computes the wait before attempt attempts+1: exponential
// in the attempt count, clamped, with ±25% seeded jitter so parallel
// destinations do not retry in lockstep. Zero when backoff is disabled.
// Caller holds d.mu (the rng is not otherwise synchronized).
func (d *Diverter) backoffLocked(attempts int) time.Duration {
	base := d.cfg.RetryBackoff
	if base <= 0 {
		return 0
	}
	shift := attempts - 1
	if shift > 20 {
		shift = 20
	}
	wait := base << shift
	if wait > d.cfg.RetryBackoffMax {
		wait = d.cfg.RetryBackoffMax
	}
	jitter := time.Duration(d.rng.Int63n(int64(wait)/2+1)) - wait/4
	return wait + jitter
}

// dequeue removes msg from the front of queue if still present.
func dequeue(queue []*Message, msg *Message) []*Message {
	if len(queue) > 0 && queue[0] == msg {
		return queue[1:]
	}
	for i, m := range queue {
		if m == msg {
			return append(queue[:i], queue[i+1:]...)
		}
	}
	return queue
}

func (d *Diverter) expireDedup() {
	cutoff := time.Now().Add(-d.cfg.DedupWindow)
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, at := range d.delivered {
		if at.Before(cutoff) {
			delete(d.delivered, id)
		}
	}
}

// Pending reports queued (undelivered) messages for a destination.
func (d *Diverter) Pending(dest string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending[dest])
}

// Drain blocks until the destination's queue empties or the timeout
// passes; it reports whether the queue emptied. The wait is event-driven:
// the pump broadcasts on every dequeue, so Drain returns as soon as the
// last message leaves instead of polling on a fixed sleep.
func (d *Diverter) Drain(dest string, timeout time.Duration) bool {
	expired := false
	timer := time.AfterFunc(timeout, func() {
		// Take the lock before broadcasting so a waiter cannot check
		// expired and then sleep through the wakeup.
		d.mu.Lock()
		expired = true
		d.mu.Unlock()
		d.drained.Broadcast()
	})
	defer timer.Stop()
	d.wake()
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.pending[dest]) > 0 && !expired && !d.closed {
		d.drained.Wait()
	}
	return len(d.pending[dest]) == 0
}

// Stats returns a copy of the counters.
func (d *Diverter) Stats() Stats {
	return Stats{
		Enqueued:    d.stats.enqueued.Load(),
		Delivered:   d.stats.delivered.Load(),
		Retries:     d.stats.retries.Load(),
		DupDropped:  d.stats.dupDropped.Load(),
		Dropped:     d.stats.dropped.Load(),
		NoRouteErrs: d.stats.noRoute.Load(),
	}
}

// Stop halts the pump. Queued messages are discarded; blocked Drain calls
// wake and report the queue state as-is.
func (d *Diverter) Stop() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.drained.Broadcast()
	d.once.Do(func() { close(d.stop) })
	<-d.done
}

// Package diverter implements OFTT's Message Diverter (Section 2.2.3): it
// makes the primary/backup pair a single consistent logical unit by storing
// and forwarding all inbound I/O messages to the current primary copy of
// the application. If a message is sent during a switchover, non-delivery
// is detected and the message is retried — the behaviour the original
// implementation obtained from Microsoft Message Queue.
//
// Delivery is at-least-once with duplicate suppression by message ID, so a
// retry that races a successful delivery does not double-apply.
//
// # Sharding
//
// The hot path is lock-striped: destinations hash onto independent lock
// stripes, and each destination owns a shard — a ring-buffer FIFO, its
// route, its dedup index, and its backoff state — under its own mutex. A
// bounded pool of delivery workers steals ready shards from a shared run
// queue; at most one worker serves a shard at a time (so per-destination
// FIFO order is structural, not scheduled), and independent destinations
// deliver fully in parallel. The handoff is batched: a worker pops up to
// BatchSize messages under one lock acquisition, delivers them with no
// lock held, and finalizes under a second — counters, telemetry, and
// ledger callbacks flush once per batch rather than once per message.
// Dedup expiry is amortized: delivered IDs live in two generation maps
// rotated every DedupWindow, so expiry is a pointer swap instead of a
// full-scan pause under any lock. A periodic sweep (RetryInterval)
// rescues shards whose head is in backoff or whose route was absent when
// work arrived.
package diverter

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Errors.
var (
	// ErrNoRoute means no primary endpoint is registered for the
	// destination; messages queue until one appears.
	ErrNoRoute = errors.New("diverter: no route to destination")

	// ErrClosed is returned after Stop.
	ErrClosed = errors.New("diverter: closed")

	// ErrDropped is recorded when a message exhausts MaxAttempts.
	ErrDropped = errors.New("diverter: message dropped after max attempts")
)

// Message is one queued unit.
type Message struct {
	ID         string
	Dest       string
	Body       []byte
	EnqueuedAt time.Time
	Attempts   int

	// Payload carries an in-process value for Broadcast batches: many
	// messages (one per destination) alias one shared payload with no
	// per-destination body copy. Nil for wire-shaped (Body) messages.
	Payload any

	// notBefore delays the next delivery attempt (redelivery backoff).
	// Zero means deliver at the next opportunity.
	notBefore time.Time
}

// LedgerHook observes the diverter's message lifecycle: every enqueue
// creates a delivery obligation that must end in exactly one Delivered or
// Dropped call. Chaos invariant checkers implement this to prove no
// acknowledged message is silently lost. Hooks are called outside the
// diverter's locks and must be safe for concurrent use.
type LedgerHook interface {
	Enqueued(id, dest string)
	Delivered(id, dest string)
	Dropped(id, dest string, attempts int)
}

// DeliverFunc delivers a message to the current primary; a nil return acks
// it. Errors leave the message queued for retry.
type DeliverFunc func(msg Message) error

// Config parameterizes a Diverter.
type Config struct {
	// RetryInterval is the redelivery sweep period (default 20ms): how
	// often shards blocked on a failed head or a missing route are
	// re-examined.
	RetryInterval time.Duration
	// DedupWindow is how long delivered message IDs are remembered: at
	// least this long, at most twice it (the index rotates two map
	// generations every window, so expiry never scans). Default 30s.
	DedupWindow time.Duration
	// MaxAttempts drops a message after this many failed deliveries;
	// 0 retries forever.
	MaxAttempts int

	// RetryBackoff enables exponential redelivery backoff: after the Nth
	// failed attempt a message waits RetryBackoff<<(N-1), clamped to
	// RetryBackoffMax, plus jitter, before its next attempt. Zero keeps
	// the legacy retry-every-sweep behaviour. A route change (SetRoute)
	// clears pending backoff so rebound destinations retry immediately.
	RetryBackoff time.Duration
	// RetryBackoffMax clamps the exponential backoff (default 50x
	// RetryBackoff).
	RetryBackoffMax time.Duration
	// Seed drives the backoff jitter; the same seed yields the same retry
	// timeline per destination (deterministic chaos replays depend on
	// this). Zero seeds from 1.
	Seed int64

	// Shards is the lock-stripe count the destination map is split
	// across, rounded up to a power of two (default 16). More stripes
	// reduce cross-destination contention on the map itself; queue
	// operations always use the destination shard's own lock.
	Shards int
	// Workers bounds the delivery worker pool (default 2*GOMAXPROCS,
	// clamped to [8, 16]). One worker serves one shard at a time, so
	// Workers bounds how many destinations deliver concurrently. The
	// floor is deliberately not CPU-scaled: deliveries are RPC-shaped
	// (they wait, they don't compute), so in-flight waits to distinct
	// destinations overlap usefully even on one core.
	Workers int
	// BatchSize caps how many messages a worker retires from one shard
	// per claim before re-queueing it for fairness; counters, telemetry,
	// and ledger callbacks flush once per batch (default 256).
	BatchSize int

	// Ledger, when set, observes every message's lifecycle (enqueue,
	// delivery, drop) for external accounting such as loss invariants.
	Ledger LedgerHook

	// Instruments are optional metrics; zero-value fields record nothing.
	Instruments Instruments
}

// Instruments are the diverter's registry-resolved metrics.
type Instruments struct {
	// QueueDepth tracks messages currently queued across destinations.
	QueueDepth *telemetry.Gauge
	// Delivered counts successful deliveries.
	Delivered *telemetry.Counter
	// Redelivered counts retry attempts after a failed delivery.
	Redelivered *telemetry.Counter
	// Dropped counts messages abandoned after MaxAttempts.
	Dropped *telemetry.Counter
	// DivertLatency observes enqueue → successful delivery, in
	// microseconds: the store-and-forward cost a message pays, which
	// spikes across a switchover.
	DivertLatency *telemetry.Histogram
	// BatchSize observes messages retired per delivery batch — how well
	// the batched handoff is amortizing per-message bookkeeping.
	BatchSize *telemetry.Histogram
}

// Stats are the diverter's counters.
type Stats struct {
	Enqueued    int64
	Delivered   int64
	Retries     int64
	DupDropped  int64
	Dropped     int64
	NoRouteErrs int64
}

// Diverter is the store-and-forward router.
type Diverter struct {
	cfg Config

	stripes []*stripe
	mask    uint32
	rq      *runqueue

	closed atomic.Bool
	nextID atomic.Uint64
	seed   int64

	stats struct {
		enqueued, delivered, retries, dupDropped, dropped, noRoute atomic.Int64
	}

	stop  chan struct{}
	loops sync.WaitGroup // delivery workers + retry sweeper
	once  sync.Once
}

// New creates and starts a diverter.
func New(cfg Config) *Diverter {
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 20 * time.Millisecond
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 30 * time.Second
	}
	if cfg.RetryBackoff > 0 && cfg.RetryBackoffMax <= 0 {
		cfg.RetryBackoffMax = 50 * cfg.RetryBackoff
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Workers <= 0 {
		w := 2 * runtime.GOMAXPROCS(0)
		if w < 8 {
			w = 8
		}
		if w > 16 {
			w = 16
		}
		cfg.Workers = w
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	n := nextPow2(cfg.Shards)
	d := &Diverter{
		cfg:     cfg,
		stripes: make([]*stripe, n),
		mask:    uint32(n - 1),
		rq:      newRunqueue(),
		seed:    seed,
		stop:    make(chan struct{}),
	}
	for i := range d.stripes {
		d.stripes[i] = &stripe{shards: make(map[string]*shard)}
	}
	for i := 0; i < cfg.Workers; i++ {
		d.loops.Add(1)
		go d.worker()
	}
	d.loops.Add(1)
	go d.sweeper()
	return d
}

// Send enqueues a message for a logical destination and returns its ID.
// Delivery is asynchronous; the message survives routing gaps (e.g. a
// switchover in progress). The generated ID is globally unique (monotonic
// counter), so its first enqueue skips the dedup lookup a caller-chosen
// ID needs; a later idempotent resend of the returned ID goes through
// SendWithID and is checked there.
func (d *Diverter) Send(dest string, body []byte) (string, error) {
	id := "m" + strconv.FormatUint(d.nextID.Add(1), 10)
	return id, d.enqueue(id, dest, body, false)
}

// msgPool recycles Message structs (and, when safe, their body buffers)
// across the store-and-forward path.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// recycle returns a message to the pool. Bodies that were handed to a
// DeliverFunc may be retained by the handler, so escaped messages abandon
// their backing array; only bodies that never left the diverter keep
// theirs for reuse.
func recycle(msg *Message, bodyEscaped bool) {
	if bodyEscaped {
		msg.Body = nil
	} else {
		msg.Body = msg.Body[:0]
	}
	msg.ID, msg.Dest = "", ""
	msg.EnqueuedAt = time.Time{}
	msg.notBefore = time.Time{}
	msg.Attempts = 0
	msg.Payload = nil
	msgPool.Put(msg)
}

// SendWithID enqueues with a caller-chosen ID (idempotent resends).
func (d *Diverter) SendWithID(id, dest string, body []byte) error {
	return d.enqueue(id, dest, body, true)
}

// enqueue is the shared send path. checkDup is false only for Send's
// self-generated IDs, which cannot collide on first enqueue; the worker's
// grab-time markIfNew still backstops double delivery either way.
func (d *Diverter) enqueue(id, dest string, body []byte, checkDup bool) error {
	if dest == "" {
		return fmt.Errorf("diverter: empty destination")
	}
	if d.closed.Load() {
		return ErrClosed
	}
	s := d.shardFor(dest)
	now := time.Now()
	s.mu.Lock()
	if d.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	s.dedup.maybeRotate(now) // amortized expiry: a pointer swap, at most once per window
	if checkDup && s.dedup.seen(id) {
		s.mu.Unlock()
		d.stats.dupDropped.Add(1)
		return nil // already delivered (or in flight): idempotent, nothing copied
	}
	msg := msgPool.Get().(*Message)
	msg.ID, msg.Dest = id, dest
	msg.Body = append(msg.Body[:0], body...)
	msg.EnqueuedAt = now
	s.q.push(msg)
	push := s.scheduleLocked(now)
	s.mu.Unlock()

	s.stripe.depth.Add(1)
	d.stats.enqueued.Add(1)
	d.cfg.Instruments.QueueDepth.Add(1)
	if h := d.cfg.Ledger; h != nil {
		h.Enqueued(id, dest)
	}
	if push {
		d.rq.push(s)
	}
	return nil
}

// SetRoute points a destination at the current primary's delivery
// endpoint. The engine re-points this after a switchover. Pending backoff
// for the destination is cleared: a fresh route deserves an immediate
// attempt regardless of how the old one failed.
func (d *Diverter) SetRoute(dest string, fn DeliverFunc) {
	s := d.shardFor(dest)
	s.mu.Lock()
	s.route = fn
	s.q.each(func(m *Message) { m.notBefore = time.Time{} })
	push := s.scheduleLocked(time.Now())
	s.mu.Unlock()
	if push {
		d.rq.push(s)
	}
}

// ClearRoute removes a destination's endpoint; messages queue meanwhile.
func (d *Diverter) ClearRoute(dest string) {
	s := d.lookup(dest)
	if s == nil {
		return
	}
	s.mu.Lock()
	s.route = nil
	s.mu.Unlock()
}

// releasable lets a refcounted broadcast payload (e.g. a pooled batch)
// be released when the diverter drops a message without delivering it,
// so the reference its enqueue took does not leak.
type releasable interface{ Release() }

func releasePayload(m *Message) {
	if r, ok := m.Payload.(releasable); ok {
		r.Release()
	}
}

// Forget retires a destination for good: the shard — ring buffer, dedup
// generations, backoff state, drain condition — leaves the stripe map, so
// churning destinations (one per OPC subscription, say) do not grow the
// diverter without bound on a long-lived process. Messages still queued
// are dropped, each resolving its ledger obligation with a Dropped
// callback and releasing its payload reference; callers that want them
// delivered Drain first. A message an in-flight worker batch returns
// after the Forget stays in the orphaned shard and is never delivered —
// Forget after Drain (or after the route stops accepting) is the
// intended order. A later Send/SetRoute to the same name starts a fresh
// shard.
func (d *Diverter) Forget(dest string) {
	st := d.stripes[stripeHash(dest)&d.mask]
	st.mu.Lock()
	s := st.shards[dest]
	if s == nil {
		st.mu.Unlock()
		return
	}
	delete(st.shards, dest)
	// Rebuild order rather than splicing in place: snapshot() hands out
	// the old backing array to lock-free readers, so it must stay intact.
	order := make([]*shard, 0, len(st.order)-1)
	for _, cand := range st.order {
		if cand != s {
			order = append(order, cand)
		}
	}
	st.order = order
	st.mu.Unlock()

	s.mu.Lock()
	s.route = nil
	var dropped []*Message
	for s.q.len() > 0 {
		dropped = append(dropped, s.q.pop())
	}
	s.mu.Unlock()
	if n := len(dropped); n > 0 {
		s.stripe.depth.Add(int64(-n))
		d.stats.dropped.Add(int64(n))
		d.cfg.Instruments.QueueDepth.Add(int64(-n))
		d.cfg.Instruments.Dropped.Add(int64(n))
	}
	for _, m := range dropped {
		if h := d.cfg.Ledger; h != nil {
			h.Dropped(m.ID, dest, m.Attempts)
		}
		releasePayload(m)
		recycle(m, m.Attempts > 0)
	}
	s.drained.Broadcast()
}

// shardFor returns dest's shard, creating it on first use.
func (d *Diverter) shardFor(dest string) *shard {
	st := d.stripes[stripeHash(dest)&d.mask]
	st.mu.RLock()
	s := st.shards[dest]
	st.mu.RUnlock()
	if s != nil {
		return s
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if s = st.shards[dest]; s != nil {
		return s
	}
	s = &shard{
		dest:   dest,
		stripe: st,
		dedup:  newDedup(d.cfg.DedupWindow, time.Now()),
		// Per-destination deterministic jitter: the same (Seed, dest)
		// yields the same retry timeline regardless of shard count or
		// worker interleaving.
		rng: rand.New(rand.NewSource(d.seed ^ int64(stripeHash(dest))*2654435761)),
	}
	s.drained = sync.NewCond(&s.mu)
	st.shards[dest] = s
	st.order = append(st.order, s)
	return s
}

// lookup returns dest's shard or nil, without creating one.
func (d *Diverter) lookup(dest string) *shard {
	st := d.stripes[stripeHash(dest)&d.mask]
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.shards[dest]
}

// kick schedules dest's shard if it has deliverable work.
func (d *Diverter) kick(s *shard) {
	s.mu.Lock()
	push := s.scheduleLocked(time.Now())
	s.mu.Unlock()
	if push {
		d.rq.push(s)
	}
}

// worker is one delivery loop: steal the oldest ready shard, serve a
// batch, repeat.
func (d *Diverter) worker() {
	defer d.loops.Done()
	for {
		s, ok := d.rq.pop()
		if !ok {
			return
		}
		d.serve(s)
	}
}

// serve retires up to BatchSize messages from one shard with exactly two
// lock acquisitions: a grab (pop the deliverable prefix, mark dedup),
// lock-free FIFO delivery, a per-batch flush of counters, telemetry, and
// ledger callbacks, then a finalize (requeue an undelivered tail at the
// front, release or re-queue the shard). The scheduled flag keeps the
// scratch batch single-owner across the whole span.
func (d *Diverter) serve(s *shard) {
	batch := s.scratchBatch[:0]
	dups := 0
	noRoute := false

	s.mu.Lock()
	now := time.Now()
	s.dedup.maybeRotate(now)
	fn := s.route
	if fn == nil {
		noRoute = s.q.len() > 0 // keep queued until a route appears
	} else {
		for len(batch)+dups < d.cfg.BatchSize && s.q.len() > 0 {
			msg := s.q.peek()
			if !msg.notBefore.IsZero() && now.Before(msg.notBefore) {
				break // head backing off: preserve FIFO, sweep retries later
			}
			s.q.pop()
			// Mark delivered optimistically so a racing resend — or a
			// duplicate already queued behind this one — is suppressed even
			// while the attempt is in flight; un-marked on failure.
			if !s.dedup.markIfNew(msg.ID) {
				dups++
				// A message that was never passed to a DeliverFunc may
				// safely donate its body buffer back to the pool.
				recycle(msg, msg.Attempts > 0)
				continue
			}
			batch = append(batch, msg)
		}
		s.inflight = len(batch)
	}
	s.mu.Unlock()

	// Deliver with no lock held, strictly in FIFO order. The first failure
	// stops the batch: everything behind the failed head stays pending.
	delivered := 0
	failed := false
	for _, msg := range batch {
		msg.Attempts++
		if fn(*msg) != nil {
			failed = true
			break
		}
		delivered++
	}
	var dropped *Message
	if failed && d.cfg.MaxAttempts > 0 && batch[delivered].Attempts >= d.cfg.MaxAttempts {
		dropped = batch[delivered]
	}

	// Flush once per batch, still outside the shard lock. The ledger flush
	// runs before the shard is marked empty in the finalize below, so a
	// woken Drain never observes an unresolved obligation.
	now = time.Now()
	removed := delivered + dups
	if dropped != nil {
		removed++
	}
	if removed > 0 {
		s.stripe.depth.Add(int64(-removed))
		d.cfg.Instruments.QueueDepth.Add(int64(-removed))
		d.cfg.Instruments.BatchSize.Observe(int64(removed))
	}
	if dups > 0 {
		d.stats.dupDropped.Add(int64(dups))
	}
	if failed {
		d.stats.retries.Add(1)
		d.cfg.Instruments.Redelivered.Add(1)
	}
	if noRoute {
		d.stats.noRoute.Add(1)
	}
	if delivered > 0 {
		d.stats.delivered.Add(int64(delivered))
		d.cfg.Instruments.Delivered.Add(int64(delivered))
		if d.cfg.Instruments.DivertLatency != nil {
			for _, msg := range batch[:delivered] {
				d.cfg.Instruments.DivertLatency.ObserveDuration(now.Sub(msg.EnqueuedAt))
			}
		}
		if h := d.cfg.Ledger; h != nil {
			for _, msg := range batch[:delivered] {
				h.Delivered(msg.ID, s.dest)
			}
		}
		for _, msg := range batch[:delivered] {
			recycle(msg, true) // handler saw the body; abandon it
		}
	}
	if dropped != nil {
		d.stats.dropped.Add(1)
		d.cfg.Instruments.Dropped.Add(1)
		if h := d.cfg.Ledger; h != nil {
			h.Dropped(dropped.ID, s.dest, dropped.Attempts)
		}
	}

	// Finalize: requeue the undelivered tail at the queue front (order
	// intact), un-mark its optimistic dedup entries, arm the failed head's
	// backoff, then release the shard or re-queue it for fairness. The
	// scratch handoff happens before scheduled can clear, so the next
	// owner never races this worker on the slice.
	s.scratchBatch = batch[:0]
	s.mu.Lock()
	if failed {
		tail := batch[delivered:]
		for _, m := range tail {
			s.dedup.remove(m.ID)
		}
		if dropped != nil {
			tail = tail[1:] // the dropped head leaves the queue for good
		} else {
			tail[0].notBefore = now.Add(s.backoffLocked(&d.cfg, tail[0].Attempts))
		}
		s.q.unshift(tail)
	}
	s.inflight = 0
	empty := s.q.len() == 0
	more := s.runnableLocked(now)
	if !more {
		s.scheduled = false
	}
	s.mu.Unlock()
	if empty {
		s.drained.Broadcast()
	}
	if more {
		d.rq.push(s)
	}
	if dropped != nil {
		releasePayload(dropped)
		recycle(dropped, true)
	}
}

// sweeper periodically rescans shards whose head is in backoff or whose
// route was missing, and pays down dedup expiry in the background.
func (d *Diverter) sweeper() {
	defer d.loops.Done()
	t := time.NewTicker(d.cfg.RetryInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.sweep()
		}
	}
}

func (d *Diverter) sweep() {
	now := time.Now()
	for _, st := range d.stripes {
		for _, s := range st.snapshot() {
			s.mu.Lock()
			if s.q.len() > 0 && s.route == nil {
				d.stats.noRoute.Add(1)
			}
			s.dedup.maybeRotate(now) // keeps idle shards from pinning stale generations
			push := s.scheduleLocked(now)
			s.mu.Unlock()
			if push {
				d.rq.push(s)
			}
		}
	}
}

// Pending reports queued (undelivered) messages for a destination,
// including any momentarily held in a worker's in-flight batch.
func (d *Diverter) Pending(dest string) int {
	s := d.lookup(dest)
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.len() + s.inflight
}

// StripeDepths reports queued messages per lock stripe — the per-shard
// queue-depth gauges telemetry exports. Index i is stripe i.
func (d *Diverter) StripeDepths() []int64 {
	out := make([]int64, len(d.stripes))
	for i, st := range d.stripes {
		out[i] = st.depth.Load()
	}
	return out
}

// NumStripes reports the lock-stripe count (Config.Shards rounded up to a
// power of two).
func (d *Diverter) NumStripes() int { return len(d.stripes) }

// Drain blocks until the destination's queue empties or the timeout
// passes; it reports whether the queue emptied. The wait is event-driven:
// the serving worker broadcasts when the shard empties, after its ledger
// flush, so Drain returns as soon as the last message's bookkeeping is
// done instead of polling on a fixed sleep. Messages held in an in-flight
// batch still count as pending.
func (d *Diverter) Drain(dest string, timeout time.Duration) bool {
	s := d.lookup(dest)
	if s == nil {
		return true // nothing was ever queued for dest
	}
	d.kick(s)
	expired := false
	timer := time.AfterFunc(timeout, func() {
		// Take the lock before broadcasting so a waiter cannot check
		// expired and then sleep through the wakeup.
		s.mu.Lock()
		expired = true
		s.mu.Unlock()
		s.drained.Broadcast()
	})
	defer timer.Stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.q.len()+s.inflight > 0 && !expired && !d.closed.Load() {
		s.drained.Wait()
	}
	return s.q.len()+s.inflight == 0
}

// Stats returns a copy of the counters.
func (d *Diverter) Stats() Stats {
	return Stats{
		Enqueued:    d.stats.enqueued.Load(),
		Delivered:   d.stats.delivered.Load(),
		Retries:     d.stats.retries.Load(),
		DupDropped:  d.stats.dupDropped.Load(),
		Dropped:     d.stats.dropped.Load(),
		NoRouteErrs: d.stats.noRoute.Load(),
	}
}

// Stop halts the workers and the sweeper. Queued messages are discarded;
// blocked Drain calls wake and report the queue state as-is.
func (d *Diverter) Stop() {
	d.once.Do(func() {
		d.closed.Store(true)
		close(d.stop)
		d.rq.close()
		d.loops.Wait()
		for _, st := range d.stripes {
			for _, s := range st.snapshot() {
				// Lock/unlock pairs with waiters' condition checks so no
				// Drain sleeps through the shutdown broadcast.
				s.mu.Lock()
				s.mu.Unlock() //nolint:staticcheck // empty critical section fences the broadcast
				s.drained.Broadcast()
			}
		}
	})
}

package ftim

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// opHarness is a harness whose engines carry telemetry registries and
// streaming knobs tuned small enough to exercise chunking in-test.
type opHarness struct {
	*harness
	reg1, reg2 *telemetry.Registry
}

func newOpHarness(t *testing.T, tune func(*engine.Config)) *opHarness {
	t.Helper()
	h := &harness{}
	oh := &opHarness{harness: h,
		reg1: telemetry.NewRegistry(), reg2: telemetry.NewRegistry()}
	h.nets = []*netsim.Network{netsim.New("ethA", 1)}
	h.node1 = cluster.NewNode("node1", 1, h.nets...)
	h.node2 = cluster.NewNode("node2", 2, h.nets...)
	cfg := func(peer string, reg *telemetry.Registry) engine.Config {
		c := engine.Config{
			PeerNode:          peer,
			HeartbeatInterval: 5 * time.Millisecond,
			PeerTimeout:       50 * time.Millisecond,
			Metrics:           reg,
			Startup: engine.StartupPolicy{
				Retries:       10,
				RetryInterval: 10 * time.Millisecond,
				Alone:         engine.AloneBecomePrimary,
			},
		}
		if tune != nil {
			tune(&c)
		}
		return c
	}
	h.e1 = engine.New(h.node1, cfg("node2", oh.reg1), nil)
	h.e2 = engine.New(h.node2, cfg("node1", oh.reg2), nil)
	if err := h.e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := h.e2.Start(nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.e1.Stop()
		h.e2.Stop()
	})
	waitFor(t, "pair formation", func() bool {
		return h.e1.Role() == engine.RolePrimary && h.e2.Role() == engine.RoleBackup
	})
	return oh
}

// counterState is the op-log demo state: ops are 8-byte LE deltas.
type counterState struct {
	Count int64
}

func deltaOp(d int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(d))
	return b[:]
}

func opConfig(comp string, e *engine.Engine, state *counterState, period time.Duration) Config {
	return Config{
		Component:        comp,
		Engine:           e,
		CheckpointPeriod: period,
		OpLog: &OpLogConfig{
			FlushInterval: 2 * time.Millisecond,
			Apply: func(op []byte) error {
				state.Count += int64(binary.LittleEndian.Uint64(op))
				return nil
			},
		},
	}
}

func TestMutateShipsOpsAndStandbyApplies(t *testing.T) {
	h := newOpHarness(t, nil)

	stateP := &counterState{}
	fp, err := Initialize(opConfig("app", h.e1, stateP, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Shutdown()
	if err := fp.RegisterState("counter", stateP); err != nil {
		t.Fatal(err)
	}

	stateB := &counterState{}
	fb, err := Initialize(opConfig("app", h.e2, stateB, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Shutdown()
	if err := fb.RegisterState("counter", stateB); err != nil {
		t.Fatal(err)
	}

	// Anchor once so the backup has a base; ops carry everything after.
	if err := fp.Save(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := fp.Mutate(deltaOp(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "ops at backup store", func() bool { return h.e2.Store().OpSeq() >= 10 })
	waitFor(t, "standby live apply", func() bool {
		if !fb.StandbyLive() {
			return false
		}
		var got int64
		fb.WithLock(func() { got = stateB.Count })
		return got == 55
	})

	// The op lane drains: once shipped and acked, nothing is buffered.
	waitFor(t, "op log drained", func() bool {
		ops, _ := fp.OpLogLag()
		return ops == 0
	})

	// Mutate is a primary-only API.
	if err := fb.Mutate(deltaOp(1)); err != ErrNotPrimary {
		t.Fatalf("backup Mutate: %v", err)
	}
}

func TestHotStandbyTakeoverWithoutMaterialize(t *testing.T) {
	h := newOpHarness(t, nil)

	stateP := &counterState{}
	fp, err := Initialize(opConfig("app", h.e1, stateP, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	_ = fp.RegisterState("counter", stateP)

	restoredCh := make(chan bool, 1)
	stateB := &counterState{}
	cfgB := opConfig("app", h.e2, stateB, time.Hour)
	cfgB.OnActivate = func(restored bool) { restoredCh <- restored }
	fb, err := Initialize(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Shutdown()
	_ = fb.RegisterState("counter", stateB)

	if err := fp.Save(); err != nil {
		t.Fatal(err)
	}
	// These deltas are never snapshot-anchored (period is an hour): only
	// the op stream carries them.
	for i := 0; i < 5; i++ {
		if err := fp.Mutate(deltaOp(100)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "standby caught up live", func() bool {
		if !fb.StandbyLive() {
			return false
		}
		var got int64
		fb.WithLock(func() { got = stateB.Count })
		return got == 500
	})

	// Primary node dies; the hot standby takes over from its live state.
	h.node1.PowerOff()
	select {
	case restored := <-restoredCh:
		if !restored {
			t.Fatal("hot standby takeover reported no restore")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("standby never activated")
	}
	var got int64
	fb.WithLock(func() { got = stateB.Count })
	if got != 500 {
		t.Fatalf("state after hot takeover: %d, want 500", got)
	}
}

// TestPartialShipRebaseResumesEndToEnd breaks the checkpoint channel
// mid-stream twice: first to break the incremental chain (forcing a full
// re-base), then mid-way through the re-base itself. The retried re-base
// must RESUME the partial transfer rather than restart it, and the chain
// must continue past it.
func TestPartialShipRebaseResumesEndToEnd(t *testing.T) {
	h := newOpHarness(t, func(c *engine.Config) {
		c.CheckpointChunkSize = 4 << 10
		c.CheckpointWindow = 8
		c.CheckpointAckTimeout = 150 * time.Millisecond
	})
	// Per-frame latency paces the stream so the partitions land mid-flight.
	h.nets[0].SetLatency(500*time.Microsecond, 0)

	big := make([]byte, 1<<20) // 256 chunks per full ship
	for i := range big {
		big[i] = byte(i * 13)
	}
	fp, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e1,
		CheckpointPeriod: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fp.Shutdown()
	if err := fp.RegisterState("big", &big); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "initial chain", func() bool { return h.e2.Store().LastSeq() >= 2 })

	chunks := h.reg1.Counter(`oftt_ckpt_stream_chunks_total{node="node1"}`)
	resumes := h.reg1.Counter(`oftt_ckpt_stream_resumes_total{node="node1"}`)
	ckptCli, ckptSrv := netsim.Addr("node1:engine-ckpt-cli"), netsim.Addr("node2:engine-ckpt")

	cutMidTransfer := func(tag string) {
		t.Helper()
		// Dirty the whole region so the next incremental is a 1MB ship,
		// then cut the checkpoint channel while its chunks are flowing.
		fp.WithLock(func() { big[0]++ })
		base := chunks.Value()
		waitFor(t, tag+": stream in flight", func() bool { return chunks.Value() > base+20 })
		h.nets[0].Partition(ckptCli, ckptSrv)
		_, failedBefore := fp.CheckpointStats()
		waitFor(t, tag+": ship failure", func() bool {
			_, failed := fp.CheckpointStats()
			return failed > failedBefore
		})
	}

	// Cut 1 breaks the incremental chain: the FTIM owes the backup a full
	// re-base. Heal and let the re-base full transfer start, then cut
	// again mid-flight so a partial of the re-base is left behind.
	cutMidTransfer("cut1")
	h.nets[0].Heal(ckptCli, ckptSrv)
	base := chunks.Value()
	waitFor(t, "re-base in flight", func() bool { return chunks.Value() > base+20 })
	h.nets[0].Partition(ckptCli, ckptSrv)
	_, failedBefore := fp.CheckpointStats()
	waitFor(t, "re-base interrupted", func() bool {
		_, failed := fp.CheckpointStats()
		return failed > failedBefore
	})
	h.nets[0].Heal(ckptCli, ckptSrv)

	// The retried re-base resumes the partial transfer and the chain
	// continues: the backup converges on the primary's exact state.
	waitFor(t, "chain recovered", func() bool { return resumes.Value() >= 1 })
	fp.WithLock(func() { big[1] += 7 })
	var want []byte
	fp.WithLock(func() { want = append([]byte(nil), big...) })
	waitFor(t, "replica convergence", func() bool {
		if h.e2.Store().LastSeq() == 0 {
			return false
		}
		var replica []byte
		r2 := checkpointRegistry(t, "big", &replica)
		if err := h.e2.Store().Materialize(r2); err != nil {
			return false
		}
		if len(replica) != len(want) {
			return false
		}
		for i := range want {
			if replica[i] != want[i] {
				return false
			}
		}
		return true
	})
}

// checkpointRegistry builds a one-region registry around ptr.
func checkpointRegistry(t *testing.T, name string, ptr any) *checkpoint.Registry {
	t.Helper()
	r := checkpoint.NewRegistry()
	if err := r.Register(name, ptr); err != nil {
		t.Fatal(err)
	}
	return r
}

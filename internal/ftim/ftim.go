// Package ftim implements OFTT's Fault Tolerance Interface Module
// (Section 2.2.2): the library linked into an application that wants OFTT
// services. It checkpoints the application state (client FTIM), monitors
// the application by heartbeating to the OFTT engine on its behalf, and
// receives control from the engine at activation/deactivation.
//
// The paper's API surface is preserved with Go spellings:
//
//	OFTTInitialize()      -> Initialize / InitializeServer
//	OFTTSelSave()         -> ClientFTIM.SelSave
//	OFTTSave()            -> ClientFTIM.Save
//	OFTTGetMyRole()       -> ClientFTIM.MyRole
//	OFTTWatchdogCreate()  -> ClientFTIM.WatchdogCreate
//	OFTTWatchdogSet()     -> ClientFTIM.WatchdogSet
//	OFTTWatchdogReset()   -> ClientFTIM.WatchdogReset
//	OFTTWatchdogDelete()  -> ClientFTIM.WatchdogDelete
//	OFTTDistress()        -> ClientFTIM.Distress
//
// On NT, statically created state was captured via GetThreadContext plus a
// memory walkthrough and dynamically created threads were found by
// intercepting the Import Address Table. Here, static state is registered
// with RegisterState (the walkthrough) and dynamic tasks are created
// through ClientFTIM.Go, which registers their state before the task runs
// (the IAT hook).
package ftim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/heartbeat"
	"repro/internal/telemetry"
)

// CaptureMode selects the periodic checkpoint flavor. The trade-off:
// CaptureFull ships every registered region each period — the largest
// frames and capture cost, but the backup can always restore from the
// latest snapshot alone. CaptureSelective ships only SelSave-designated
// regions — cheap, but regions outside the selection are only as fresh as
// the last full capture. CaptureIncremental (the default) ships only
// regions whose contents changed since the previous capture — near-free
// in steady state, at the cost of the backup needing an unbroken chain
// from the last full base (the FTIM re-bases automatically after any ship
// failure or activation).
type CaptureMode int

// Capture modes.
const (
	// CaptureFull checkpoints every registered region each period.
	CaptureFull CaptureMode = iota + 1
	// CaptureSelective checkpoints only SelSave-designated regions.
	CaptureSelective
	// CaptureIncremental checkpoints only regions that changed.
	CaptureIncremental
)

// String names the mode (also the metric label).
func (m CaptureMode) String() string {
	switch m {
	case CaptureFull:
		return "full"
	case CaptureSelective:
		return "selective"
	case CaptureIncremental:
		return "incremental"
	default:
		return "unknown"
	}
}

// Errors.
var (
	// ErrShutdown is returned after the FTIM has been shut down.
	ErrShutdown = errors.New("ftim: shut down")

	// ErrNotPrimary is returned for primary-only operations (Save).
	ErrNotPrimary = errors.New("ftim: not primary")
)

// Config parameterizes Initialize (the client FTIM).
type Config struct {
	// Component is the name the application is monitored under.
	Component string
	// Engine is this node's OFTT engine.
	Engine *engine.Engine

	// CheckpointPeriod is the periodic checkpoint interval (default 50ms).
	CheckpointPeriod time.Duration
	// Mode is the periodic capture flavor (default CaptureIncremental).
	Mode CaptureMode
	// HeartbeatInterval is the application heartbeat period (default 10ms).
	HeartbeatInterval time.Duration
	// Timeout is the engine-side silence threshold (default 5x interval).
	Timeout time.Duration
	// Rule is the application's recovery rule (default: 2 local restarts
	// then switchover).
	Rule engine.RecoveryRule
	// Restart is the local recovery provision invoked by the engine.
	Restart func() error

	// OnActivate fires when this copy becomes the executing (primary)
	// copy; restored reports whether a checkpoint was applied first.
	OnActivate func(restored bool)
	// OnDeactivate fires when this copy stops executing.
	OnDeactivate func()

	// Reattach binds to an existing engine component entry instead of
	// registering fresh — the restart path after an application crash,
	// which must preserve the engine's restart budget.
	Reattach bool

	// OpLog, when set, enables continuous op-log shipping: Mutate streams
	// operations to the peers between checkpoint anchors, and a backup
	// replays them into its live registered state so takeover skips the
	// store materialization.
	OpLog *OpLogConfig

	// Metrics, when set, records per-mode checkpoint capture duration and
	// size plus ship outcomes. Nil runs uninstrumented.
	Metrics *telemetry.Registry
}

func (c *Config) applyDefaults() error {
	if c.Component == "" {
		return errors.New("ftim: Component required")
	}
	if c.Engine == nil {
		return errors.New("ftim: Engine required")
	}
	if c.CheckpointPeriod <= 0 {
		c.CheckpointPeriod = 50 * time.Millisecond
	}
	if c.Mode == 0 {
		c.Mode = CaptureIncremental
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * c.HeartbeatInterval
	}
	if c.Rule.MaxLocalRestarts == 0 && c.Rule.Exhausted == 0 {
		c.Rule = engine.RecoveryRule{MaxLocalRestarts: 2, Exhausted: engine.ExhaustSwitchover}
	}
	if c.OpLog != nil {
		if err := c.OpLog.applyDefaults(); err != nil {
			return err
		}
	}
	return nil
}

// task is one dynamically created, tracked unit of work.
type task struct {
	name string
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

func (t *task) signalStop() { t.once.Do(func() { close(t.stop) }) }

// ClientFTIM is the stateful-application interface module. The application
// and the FTIM run as separate threads in the same address space: the app
// mutates registered state under the FTIM's lock while the FTIM thread
// checkpoints and heartbeats.
// ftimInstruments are per-capture-mode checkpoint metrics, indexed by
// CaptureMode. All nil (no-op) without Config.Metrics.
type ftimInstruments struct {
	captureUS    [CaptureIncremental + 1]*telemetry.Histogram
	captureBytes [CaptureIncremental + 1]*telemetry.Histogram
	shipped      *telemetry.Counter
	shipErrs     *telemetry.Counter
	lagOps       *telemetry.Gauge
	lagBytes     *telemetry.Gauge
	standbyLive  *telemetry.Gauge
}

type ClientFTIM struct {
	cfg Config
	reg *checkpoint.Registry
	ins ftimInstruments

	mu       sync.Mutex
	ready    bool
	active   bool
	shutdown bool
	tasks    map[string]*task
	ckpts    int64
	ckptErrs int64
	needFull bool
	// pendingFull is a full capture whose ship failed partway: it is
	// re-shipped verbatim so the stream layer can resume from the
	// receiver's buffered partial transfer, and no new captures are taken
	// until it lands (the incremental chain stays rooted at its sequence).
	pendingFull *checkpoint.Snapshot
	// live is the hot-standby flag: the registered state is current with
	// the shipped stream, so takeover can skip Materialize.
	live bool

	// shipMu serializes snapshot ships with op-batch ships so they leave
	// in one total order per peer.
	shipMu sync.Mutex
	oplog  *checkpoint.OpLog

	emitter *heartbeat.Emitter

	ckptStop chan struct{}
	ckptDone chan struct{}
	opStop   chan struct{}
	opDone   chan struct{}

	wg sync.WaitGroup
}

// Initialize is OFTTInitialize for an OPC client (stateful) application:
// "At the minimum, it is the only API an application needs to add in order
// to use the OFTT services." State registered later still checkpoints, but
// applications that must register state before their first activation
// (e.g. to be restored on a reattach) use InitializeDeferred + AttachContext.
func Initialize(cfg Config) (*ClientFTIM, error) {
	f, err := InitializeDeferred(cfg)
	if err != nil {
		return nil, err
	}
	_ = f.AttachContext(context.Background())
	return f, nil
}

// InitializeDeferred performs OFTTInitialize but holds off applying the
// engine's current role until AttachContext is called, giving the
// application a window to register its state regions first.
func InitializeDeferred(cfg Config) (*ClientFTIM, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	f := &ClientFTIM{
		cfg:   cfg,
		reg:   checkpoint.NewRegistry(),
		tasks: make(map[string]*task),
	}
	if reg := cfg.Metrics; reg != nil {
		for _, m := range []CaptureMode{CaptureFull, CaptureSelective, CaptureIncremental} {
			label := `{component="` + cfg.Component + `",mode="` + m.String() + `"}`
			f.ins.captureUS[m] = reg.Histogram("oftt_checkpoint_capture_us"+label, telemetry.DurationBuckets...)
			f.ins.captureBytes[m] = reg.Histogram("oftt_checkpoint_capture_bytes"+label, telemetry.SizeBuckets...)
		}
		label := `{component="` + cfg.Component + `"}`
		f.ins.shipped = reg.Counter("oftt_checkpoint_shipped_total" + label)
		f.ins.shipErrs = reg.Counter("oftt_checkpoint_ship_errors_total" + label)
		f.ins.lagOps = reg.Gauge("oftt_oplog_lag_ops" + label)
		f.ins.lagBytes = reg.Gauge("oftt_oplog_lag_bytes" + label)
		f.ins.standbyLive = reg.Gauge("oftt_standby_live" + label)
	}
	if cfg.OpLog != nil {
		f.oplog = checkpoint.NewOpLog(cfg.OpLog.MaxBytes)
	}

	register := cfg.Engine.RegisterComponent
	if cfg.Reattach {
		register = cfg.Engine.ReattachComponent
	}
	if err := register(cfg.Component, cfg.Timeout, cfg.Rule, cfg.Restart); err != nil {
		return nil, err
	}

	// Heartbeat to the engine on the application's behalf.
	f.emitter = heartbeat.NewEmitter(cfg.Component, cfg.HeartbeatInterval, func(b heartbeat.Beat) {
		cfg.Engine.ComponentBeat(b.Source, b.Seq, b.Status)
	})
	f.emitter.Start()

	// Mirror the engine store's applies into the live registered state —
	// the hot-standby path that lets takeover skip the O(state)
	// materialization. One observer per store: hot standby assumes the
	// usual one-application-per-engine deployment.
	cfg.Engine.Store().SetObserver(f.onStoreEvent)

	// Receive control from the engine on role transitions (gated on
	// AttachContext).
	cfg.Engine.OnRoleChange(f.onRole)
	return f, nil
}

// AttachContext applies the engine's current role and enables
// role-transition handling. Idempotent. Attaching on a primary may
// recover state from the peer over the network; ctx bounds that wait —
// on expiry AttachContext returns ctx.Err() while the attach itself
// completes in the background (the FTIM cannot be left half-attached).
func (f *ClientFTIM) AttachContext(ctx context.Context) error {
	f.mu.Lock()
	if f.ready {
		f.mu.Unlock()
		return nil
	}
	f.ready = true
	f.mu.Unlock()

	done := make(chan struct{})
	go func() {
		defer close(done)
		f.applyRole(f.cfg.Engine.Role(), true)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Registry exposes the checkpoint registry (tests, advanced use).
func (f *ClientFTIM) Registry() *checkpoint.Registry { return f.reg }

// RegisterState names a state region for the checkpoint walkthrough. ptr
// must be a non-nil pointer; the pointee is captured and restored.
func (f *ClientFTIM) RegisterState(name string, ptr any) error {
	return f.reg.Register(name, ptr)
}

// SelSave is OFTTSelSave: designate specific regions for selective
// checkpointing.
func (f *ClientFTIM) SelSave(names ...string) error {
	return f.reg.Select(names...)
}

// Lock acquires the shared state mutex. Applications mutate registered
// state under this lock so captures see consistent snapshots.
func (f *ClientFTIM) Lock() { f.reg.Lock() }

// Unlock releases the shared state mutex.
func (f *ClientFTIM) Unlock() { f.reg.Unlock() }

// WithLock runs fn under the shared state mutex.
func (f *ClientFTIM) WithLock(fn func()) { f.reg.WithLock(fn) }

// MyRole is OFTTGetMyRole.
func (f *ClientFTIM) MyRole() engine.Role { return f.cfg.Engine.Role() }

// PauseHeartbeats suppresses the FTIM's liveness beats without stopping the
// application — to the engine the app looks hung, triggering the same
// detection path as a real wedge. ResumeHeartbeats undoes it (fault
// injection only; real apps never call these).
func (f *ClientFTIM) PauseHeartbeats() {
	if f.emitter != nil {
		f.emitter.Pause()
	}
}

// ResumeHeartbeats re-enables liveness beats after PauseHeartbeats.
func (f *ClientFTIM) ResumeHeartbeats() {
	if f.emitter != nil {
		f.emitter.Resume()
	}
}

// Save is OFTTSave: copy the state (or the selected subset) to the peer
// node immediately, without waiting for a checkpoint period — the
// event-based checkpoint the paper calls out as necessary.
func (f *ClientFTIM) Save() error {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return ErrShutdown
	}
	f.mu.Unlock()
	if f.MyRole() != engine.RolePrimary {
		return ErrNotPrimary
	}
	return f.checkpointOnce()
}

// Distress is OFTTDistress: report a significant problem and request a
// switchover (honored if the peer is functional).
func (f *ClientFTIM) Distress(reason string) error {
	return f.cfg.Engine.Distress(f.cfg.Component, reason)
}

// SetRecoveryRule changes this application's recovery rule at run-time —
// the dynamic option the paper's implementation left as future work.
func (f *ClientFTIM) SetRecoveryRule(rule engine.RecoveryRule) error {
	return f.cfg.Engine.SetRecoveryRule(f.cfg.Component, rule, false)
}

// WatchdogCreate is OFTTWatchdogCreate: the timer lives in the engine, so
// it survives application failure.
func (f *ClientFTIM) WatchdogCreate(name string) error {
	return f.cfg.Engine.Watchdogs().Create(name, f.cfg.Component)
}

// WatchdogSet is OFTTWatchdogSet: arm the timer; expiry raises distress.
func (f *ClientFTIM) WatchdogSet(name string, d time.Duration) error {
	return f.cfg.Engine.Watchdogs().Set(name, d, func(n string) {
		_ = f.Distress("watchdog " + n + " expired")
	})
}

// WatchdogReset is OFTTWatchdogReset.
func (f *ClientFTIM) WatchdogReset(name string) error {
	return f.cfg.Engine.Watchdogs().Reset(name)
}

// WatchdogDelete is OFTTWatchdogDelete.
func (f *ClientFTIM) WatchdogDelete(name string) error {
	return f.cfg.Engine.Watchdogs().Delete(name)
}

// Go starts a tracked dynamic task — the analog of intercepting
// CreateThread via the IAT so dynamically created state stays
// checkpointable. If state is non-nil it is registered as region
// "task:<name>" before the task starts and unregistered when it exits.
func (f *ClientFTIM) Go(name string, state any, fn func(stop <-chan struct{})) error {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return ErrShutdown
	}
	if _, dup := f.tasks[name]; dup {
		f.mu.Unlock()
		return fmt.Errorf("ftim: task %q already running", name)
	}
	t := &task{name: name, stop: make(chan struct{}), done: make(chan struct{})}
	f.tasks[name] = t
	f.mu.Unlock()

	region := "task:" + name
	if state != nil {
		if err := f.reg.Register(region, state); err != nil {
			f.mu.Lock()
			delete(f.tasks, name)
			f.mu.Unlock()
			return err
		}
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer close(t.done)
		defer func() {
			if state != nil {
				f.reg.Unregister(region)
			}
			f.mu.Lock()
			if f.tasks[name] == t {
				delete(f.tasks, name)
			}
			f.mu.Unlock()
		}()
		fn(t.stop)
	}()
	return nil
}

// StopTask signals a tracked task and waits for it to exit.
func (f *ClientFTIM) StopTask(name string) {
	f.mu.Lock()
	t := f.tasks[name]
	f.mu.Unlock()
	if t == nil {
		return
	}
	t.signalStop()
	<-t.done
}

// Tasks lists running tracked tasks.
func (f *ClientFTIM) Tasks() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.tasks))
	for name := range f.tasks {
		out = append(out, name)
	}
	return out
}

// CheckpointStats reports (successful checkpoints shipped, failures).
func (f *ClientFTIM) CheckpointStats() (ok, failed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ckpts, f.ckptErrs
}

// onRole receives control from the engine.
func (f *ClientFTIM) onRole(r engine.Role) {
	f.mu.Lock()
	ready := f.ready
	f.mu.Unlock()
	if !ready {
		return // AttachContext will apply the then-current role
	}
	f.applyRole(r, false)
}

func (f *ClientFTIM) applyRole(r engine.Role, initial bool) {
	switch r {
	case engine.RolePrimary:
		// A reattached application (restarted in place while its node is
		// already primary) rehydrates from the backup's store, where the
		// freshest checkpoint lives.
		f.activate(initial && f.cfg.Reattach)
	case engine.RoleBackup, engine.RoleShutdown, engine.RoleNegotiating:
		f.deactivate()
	}
}

func (f *ClientFTIM) activate(recoverFromPeer bool) {
	f.mu.Lock()
	if f.active || f.shutdown {
		f.mu.Unlock()
		return
	}
	f.active = true
	f.needFull = true // first post-activation ship must re-base the peer
	f.pendingFull = nil
	live := f.live
	f.ckptStop = make(chan struct{})
	f.ckptDone = make(chan struct{})
	stop, done := f.ckptStop, f.ckptDone
	var ostop, odone chan struct{}
	if f.oplog != nil {
		f.opStop = make(chan struct{})
		f.opDone = make(chan struct{})
		ostop, odone = f.opStop, f.opDone
	}
	f.mu.Unlock()

	// Restore the latest checkpoint: from the peer's store on a reattach,
	// from our own store on a takeover. A hot standby skips both — the
	// store observer kept its registered state current as snapshots and
	// ops arrived, so activation costs O(1) instead of O(state).
	restored := false
	if recoverFromPeer {
		if ok, err := f.cfg.Engine.RecoverFromPeer(f.reg); err == nil && ok {
			restored = true
		}
	}
	if !restored && live {
		restored = true
	}
	if !restored && f.cfg.Engine.Store().LastSeq() > 0 {
		if err := f.cfg.Engine.Materialize(f.reg); err == nil {
			restored = true
			// Materialize rewinds to the last snapshot; the store's
			// pending ops carry the state forward to the last shipped op.
			for _, op := range f.cfg.Engine.Store().PendingOps() {
				if f.applyOp(op.Data) != nil {
					break
				}
			}
		}
	}
	if f.cfg.OnActivate != nil {
		f.cfg.OnActivate(restored)
	}

	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.checkpointLoop(stop, done)
	}()
	if ostop != nil {
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.opFlushLoop(ostop, odone)
		}()
	}
}

func (f *ClientFTIM) deactivate() {
	f.mu.Lock()
	if !f.active {
		f.mu.Unlock()
		return
	}
	f.active = false
	stop, done := f.ckptStop, f.ckptDone
	ostop, odone := f.opStop, f.opDone
	f.mu.Unlock()

	close(stop)
	<-done
	if ostop != nil {
		close(ostop)
		<-odone
	}
	if f.oplog != nil {
		// Unshipped ops die with the primaryship: the new primary re-bases
		// us with a full snapshot before any op chain restarts.
		f.oplog.Reset()
	}
	if f.cfg.OnDeactivate != nil {
		f.cfg.OnDeactivate()
	}
}

func (f *ClientFTIM) checkpointLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(f.cfg.CheckpointPeriod)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = f.checkpointOnce()
		case <-stop:
			return
		}
	}
}

// checkpointOnce captures per the configured mode and ships to the peer.
// It serves both the periodic loop and the OFTTSave path.
func (f *ClientFTIM) checkpointOnce() error {
	f.shipMu.Lock()
	defer f.shipMu.Unlock()

	// A partially shipped full capture is re-shipped verbatim first: the
	// stream layer resumes from the receiver's buffered partial transfer,
	// so only the chunks that never arrived cross the wire.
	f.mu.Lock()
	retained := f.pendingFull
	f.mu.Unlock()
	if retained != nil {
		if err := f.shipOne(retained, CaptureFull); err != nil {
			return err
		}
		f.mu.Lock()
		still := f.pendingFull != nil
		f.mu.Unlock()
		if still {
			return nil // resume made progress but the base has not landed
		}
	}

	f.mu.Lock()
	needFull := f.needFull
	f.mu.Unlock()
	mode := f.cfg.Mode
	if needFull {
		mode = CaptureFull
	}
	start := time.Now()
	var snap *checkpoint.Snapshot
	var err error
	switch mode {
	case CaptureFull:
		snap, err = f.reg.CaptureFull()
	case CaptureSelective:
		snap, err = f.reg.CaptureSelective()
	default:
		snap, err = f.reg.CaptureIncremental()
	}
	if err != nil {
		return err
	}
	f.ins.captureUS[mode].ObserveDuration(time.Since(start))
	f.ins.captureBytes[mode].Observe(int64(snap.Bytes()))
	// Empty incrementals are shipped too: they are nearly free and keep
	// the backup's sequence number advancing, and a backup whose store was
	// reset (it was just demoted) rejects them for lack of a base, which
	// triggers the full re-base below.
	return f.shipOne(snap, mode)
}

// shipOne ships one snapshot and keeps the re-base bookkeeping: a full
// capture that fails to ship is retained so the retry resumes instead of
// re-sending, and a confirmed ship prunes the op log of every entry the
// snapshot provably contains.
func (f *ClientFTIM) shipOne(snap *checkpoint.Snapshot, mode CaptureMode) error {
	if err := f.cfg.Engine.ShipSnapshot(snap); err != nil {
		partial := errors.Is(err, checkpoint.ErrPartialShip)
		f.mu.Lock()
		f.ckptErrs++
		f.needFull = true // re-base the peer(s) on the next attempt
		// Retain the full capture for a resumed retry only when NO
		// replica confirmed it: with every peer unreachable nothing is
		// being starved, and the retry resumes the cut transfer instead
		// of restarting (the production-size-state case — a pair's single
		// peer always lands here). A partial ship must NOT retain: the
		// confirmed replicas would be frozen on this capture while we
		// re-shipped it to the stalled one, losing acked state if the
		// primary then dies — instead the next period captures a fresh
		// full (needFull above) so healthy replicas keep advancing.
		if mode == CaptureFull && !partial {
			f.pendingFull = snap
		} else {
			f.pendingFull = nil
		}
		f.mu.Unlock()
		f.ins.shipErrs.Inc()
		// A partial ship means a quorum-side copy exists — the save met
		// its contract — but some replica missed this increment and its
		// chain is broken until a full capture re-bases it.
		if partial {
			return nil
		}
		return err
	}
	f.mu.Lock()
	f.ckpts++
	f.needFull = false
	f.pendingFull = nil
	f.mu.Unlock()
	f.ins.shipped.Inc()
	if f.oplog != nil {
		f.oplog.PruneAnchored(snap.Seq)
	}
	return nil
}

// Crash terminates the FTIM abruptly, as when its hosting process is
// killed: heartbeats, checkpointing, and tasks stop, but the component
// stays registered with the engine — so the engine's failure detector sees
// the silence and applies the recovery rule, exactly as with a real
// application crash. Contrast Shutdown, the clean withdrawal.
func (f *ClientFTIM) Crash() {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return
	}
	f.shutdown = true
	tasks := make([]*task, 0, len(f.tasks))
	for _, t := range f.tasks {
		tasks = append(tasks, t)
	}
	f.mu.Unlock()

	f.deactivate()
	f.emitter.Stop()
	for _, t := range tasks {
		t.signalStop()
		<-t.done
	}
	f.wg.Wait()
	// Deliberately no UnregisterComponent: the engine must notice.
}

// Shutdown cleanly withdraws the application from OFTT: stops heartbeats,
// checkpointing, and tracked tasks, and unregisters from the engine.
func (f *ClientFTIM) Shutdown() {
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return
	}
	f.shutdown = true
	tasks := make([]*task, 0, len(f.tasks))
	for _, t := range f.tasks {
		tasks = append(tasks, t)
	}
	f.mu.Unlock()

	f.deactivate()
	f.emitter.Stop()
	for _, t := range tasks {
		t.signalStop()
		<-t.done
	}
	f.cfg.Engine.UnregisterComponent(f.cfg.Component)
	f.wg.Wait()
}

package ftim

import (
	"errors"
	"time"

	"repro/internal/engine"
	"repro/internal/heartbeat"
)

// ServerConfig parameterizes InitializeServer.
type ServerConfig struct {
	// Component is the OPC server's monitored name.
	Component string
	// Engine is this node's OFTT engine.
	Engine *engine.Engine
	// HeartbeatInterval is the beat period (default 10ms).
	HeartbeatInterval time.Duration
	// Timeout is the engine-side silence threshold (default 5x interval).
	Timeout time.Duration
	// Rule is the recovery rule (default: 3 local restarts, then keep
	// restarting — an OPC server is stateless, so local restart is always
	// the right provision).
	Rule engine.RecoveryRule
	// Restart is the local recovery provision.
	Restart func() error
	// Reattach binds to an existing engine component entry (restart path),
	// preserving the restart budget.
	Reattach bool
}

// ServerFTIM is the OPC-server interface module. Per Section 2.2.2, an OPC
// server "is simply responsible for converting data ... In this aspect, it
// is stateless", so the server FTIM monitors and heartbeats but takes no
// checkpoints — the difference between the two FTIM flavors.
type ServerFTIM struct {
	cfg     ServerConfig
	emitter *heartbeat.Emitter
	down    bool
}

// InitializeServer is OFTTInitialize for an OPC server application.
func InitializeServer(cfg ServerConfig) (*ServerFTIM, error) {
	if cfg.Component == "" {
		return nil, errors.New("ftim: Component required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("ftim: Engine required")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 10 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * cfg.HeartbeatInterval
	}
	if cfg.Rule.MaxLocalRestarts == 0 && cfg.Rule.Exhausted == 0 {
		cfg.Rule = engine.RecoveryRule{MaxLocalRestarts: 3, Exhausted: engine.ExhaustKeepRestarting}
	}

	f := &ServerFTIM{cfg: cfg}
	register := cfg.Engine.RegisterComponent
	if cfg.Reattach {
		register = cfg.Engine.ReattachComponent
	}
	if err := register(cfg.Component, cfg.Timeout, cfg.Rule, cfg.Restart); err != nil {
		return nil, err
	}
	f.emitter = heartbeat.NewEmitter(cfg.Component, cfg.HeartbeatInterval, func(b heartbeat.Beat) {
		cfg.Engine.ComponentBeat(b.Source, b.Seq, b.Status)
	})
	f.emitter.Start()
	return f, nil
}

// MyRole is OFTTGetMyRole.
func (f *ServerFTIM) MyRole() engine.Role { return f.cfg.Engine.Role() }

// SetStatus updates the status string carried by heartbeats.
func (f *ServerFTIM) SetStatus(s string) { f.emitter.SetStatus(s) }

// Distress is OFTTDistress for server applications.
func (f *ServerFTIM) Distress(reason string) error {
	return f.cfg.Engine.Distress(f.cfg.Component, reason)
}

// Crash terminates the FTIM abruptly (process kill): heartbeats stop but
// the component stays registered so the engine's detector notices.
func (f *ServerFTIM) Crash() {
	if f.down {
		return
	}
	f.down = true
	f.emitter.Stop()
}

// Shutdown withdraws the server from OFTT monitoring.
func (f *ServerFTIM) Shutdown() {
	if f.down {
		return
	}
	f.down = true
	f.emitter.Stop()
	f.cfg.Engine.UnregisterComponent(f.cfg.Component)
}

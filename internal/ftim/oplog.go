package ftim

import (
	"errors"
	"time"

	"repro/internal/checkpoint"
)

// OpLogConfig enables continuous op-log shipping: the FTIM streams each
// Mutate to the peers between checkpoint anchors, so the wire carries the
// operations (O(delta)) instead of the regions they touch. The periodic
// checkpoint loop keeps running — its captures are the anchors the op
// stream is pruned against — so deployments that use the op lane usually
// stretch CheckpointPeriod to the anchor interval they want.
type OpLogConfig struct {
	// Apply interprets one op against the registered state. It runs under
	// the registry lock — on the primary inside Mutate, and on hot
	// standbys replaying the shipped stream. It must be deterministic:
	// both sides must reach the same state from the same ops.
	Apply func(op []byte) error
	// FlushInterval is the op shipping period (default 5ms).
	FlushInterval time.Duration
	// MaxBytes bounds buffered unshipped op bytes; overflow falls back to
	// a full re-base (default checkpoint.DefaultOpLogBytes).
	MaxBytes int64
	// MaxBatchBytes bounds one shipped batch (default 1 MiB).
	MaxBatchBytes int64
}

func (c *OpLogConfig) applyDefaults() error {
	if c.Apply == nil {
		return errors.New("ftim: OpLog.Apply required")
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 5 * time.Millisecond
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = checkpoint.DefaultOpLogBytes
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 1 << 20
	}
	return nil
}

// ErrNoOpLog is returned by Mutate when OpLog was not configured.
var ErrNoOpLog = errors.New("ftim: OpLog not configured")

// Mutate applies one operation to the registered state and logs it for
// continuous shipping. The op is interpreted by OpLog.Apply under the
// registry lock, and its log entry is anchored at the current capture
// sequence — so a snapshot captured later provably contains its effect
// and the entry can be pruned once that snapshot is confirmed shipped.
//
// State mutated directly (under WithLock, outside Mutate) still
// replicates, but only via the capture modes; mixing both is fine as
// long as the regions are registered.
func (f *ClientFTIM) Mutate(op []byte) error {
	if f.oplog == nil {
		return ErrNoOpLog
	}
	f.mu.Lock()
	if f.shutdown {
		f.mu.Unlock()
		return ErrShutdown
	}
	active := f.active
	f.mu.Unlock()
	if !active {
		return ErrNotPrimary
	}
	var applyErr, appendErr error
	f.reg.WithLockSeq(func(anchor uint64) {
		if applyErr = f.cfg.OpLog.Apply(op); applyErr != nil {
			return
		}
		_, appendErr = f.oplog.Append(anchor, op)
	})
	if applyErr != nil {
		return applyErr
	}
	if appendErr != nil {
		// Log overflow: the buffered delta outgrew its budget, so the op
		// lane can no longer carry the peers to current state. The
		// mutation itself landed; replication falls back to a full
		// re-base on the next checkpoint round.
		f.mu.Lock()
		f.needFull = true
		f.mu.Unlock()
	}
	return nil
}

// OpLogLag reports the buffered, not-yet-shipped op backlog.
func (f *ClientFTIM) OpLogLag() (ops int, bytes int64) {
	if f.oplog == nil {
		return 0, 0
	}
	return f.oplog.Lag()
}

// StandbyLive reports whether this copy's registered state is being kept
// current from the shipped checkpoint/op stream, i.e. whether a takeover
// can skip materializing the store.
func (f *ClientFTIM) StandbyLive() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.live
}

func (f *ClientFTIM) setLive(v bool) {
	f.mu.Lock()
	f.live = v
	f.mu.Unlock()
	if v {
		f.ins.standbyLive.Set(1)
	} else {
		f.ins.standbyLive.Set(0)
	}
}

// applyOp interprets one shipped op against the live registered state.
func (f *ClientFTIM) applyOp(data []byte) error {
	if f.cfg.OpLog == nil {
		return ErrNoOpLog
	}
	var err error
	f.reg.WithLock(func() { err = f.cfg.OpLog.Apply(data) })
	return err
}

// onStoreEvent mirrors the engine store's applies into the live
// registered state — the hot-standby path. It runs on the receiver's
// apply path and must not call store methods (lock order); every event is
// self-contained. The executing copy ignores events: its registry is the
// authority, and the store only receives applies while we are backup.
func (f *ClientFTIM) onStoreEvent(ev checkpoint.StoreEvent) {
	f.mu.Lock()
	skip := f.active || f.shutdown
	f.mu.Unlock()
	if skip {
		return
	}
	switch ev.Kind {
	case checkpoint.EventSnapshot:
		full := ev.Snap.Kind == string(checkpoint.KindFull)
		if !full && !f.StandbyLive() {
			return // an increment without a live base is store-only
		}
		if err := f.reg.Restore(ev.Snap); err != nil {
			f.setLive(false)
			return
		}
		if full {
			// The restore rewound the live state to capture time; the
			// store's surviving pending ops (anchored at or after this
			// snapshot) bring it back to current.
			ok := true
			for _, op := range ev.Pending {
				if f.applyOp(op.Data) != nil {
					ok = false
					break
				}
			}
			f.setLive(ok)
		}
	case checkpoint.EventOps:
		if !f.StandbyLive() {
			return
		}
		for _, op := range ev.Ops {
			if f.applyOp(op.Data) != nil {
				f.setLive(false)
				return
			}
		}
	case checkpoint.EventReset:
		f.setLive(false)
	}
}

// opFlushLoop ships buffered ops every FlushInterval while primary.
func (f *ClientFTIM) opFlushLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(f.cfg.OpLog.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			f.flushOps()
		case <-stop:
			return
		}
	}
}

// flushOps ships one op batch. It shares shipMu with checkpointOnce so
// snapshots and op batches leave in a single total order per peer, and it
// stands down whenever a re-base is owed — a peer that missed a batch has
// a broken op chain until the next full snapshot resyncs it.
func (f *ClientFTIM) flushOps() {
	f.shipMu.Lock()
	defer f.shipMu.Unlock()

	f.mu.Lock()
	skip := !f.active || f.needFull || f.pendingFull != nil
	f.mu.Unlock()
	if skip {
		return
	}
	batch := f.oplog.Batch(f.cfg.OpLog.MaxBatchBytes)
	if batch == nil {
		f.reportLag()
		return
	}
	if err := f.cfg.Engine.ShipOps(batch); err != nil {
		f.mu.Lock()
		f.needFull = true
		f.mu.Unlock()
		f.reportLag()
		return
	}
	f.oplog.AckThrough(batch.Ops[len(batch.Ops)-1].Seq)
	f.reportLag()
}

func (f *ClientFTIM) reportLag() {
	ops, bytes := f.oplog.Lag()
	f.ins.lagOps.Set(int64(ops))
	f.ins.lagBytes.Set(bytes)
}

package ftim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/netsim"
)

// harness builds a live engine pair and returns both engines.
type harness struct {
	e1, e2 *engine.Engine
	node1  *cluster.Node
	node2  *cluster.Node
	nets   []*netsim.Network
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	h := &harness{}
	h.nets = []*netsim.Network{netsim.New("ethA", 1)}
	h.node1 = cluster.NewNode("node1", 1, h.nets...)
	h.node2 = cluster.NewNode("node2", 2, h.nets...)
	cfg := func(peer string) engine.Config {
		return engine.Config{
			PeerNode:          peer,
			HeartbeatInterval: 5 * time.Millisecond,
			PeerTimeout:       30 * time.Millisecond,
			Startup: engine.StartupPolicy{
				Retries:       10,
				RetryInterval: 10 * time.Millisecond,
				Alone:         engine.AloneBecomePrimary,
			},
		}
	}
	h.e1 = engine.New(h.node1, cfg("node2"), nil)
	h.e2 = engine.New(h.node2, cfg("node1"), nil)
	if err := h.e1.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := h.e2.Start(nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		h.e1.Stop()
		h.e2.Stop()
	})
	waitFor(t, "pair formation", func() bool {
		return h.e1.Role() == engine.RolePrimary && h.e2.Role() == engine.RoleBackup
	})
	return h
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

type appState struct {
	Count int64
	Hist  []int64
}

func TestInitializeValidation(t *testing.T) {
	if _, err := Initialize(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	h := newHarness(t)
	if _, err := Initialize(Config{Component: "app"}); err == nil {
		t.Fatal("missing engine accepted")
	}
	f, err := Initialize(Config{Component: "app", Engine: h.e1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	if f.MyRole() != engine.RolePrimary {
		t.Fatalf("role = %v", f.MyRole())
	}
}

func TestActivationOnPrimary(t *testing.T) {
	h := newHarness(t)
	activated := make(chan bool, 1)
	f, err := Initialize(Config{
		Component:  "app",
		Engine:     h.e1,
		OnActivate: func(restored bool) { activated <- restored },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	select {
	case restored := <-activated:
		if restored {
			t.Fatal("nothing to restore on first activation")
		}
	case <-time.After(time.Second):
		t.Fatal("OnActivate never fired on primary")
	}
}

func TestBackupStaysInactive(t *testing.T) {
	h := newHarness(t)
	activated := make(chan bool, 1)
	f, err := Initialize(Config{
		Component:  "app",
		Engine:     h.e2, // backup side
		OnActivate: func(restored bool) { activated <- restored },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	select {
	case <-activated:
		t.Fatal("backup copy activated")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestCheckpointFlowsToBackupStore(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e1,
		CheckpointPeriod: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()

	state := &appState{Count: 1}
	if err := f.RegisterState("state", state); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "checkpoint receipt", func() bool { return h.e2.Store().LastSeq() > 0 })

	f.WithLock(func() { state.Count = 42 })
	waitFor(t, "updated checkpoint", func() bool {
		ok, _ := f.CheckpointStats()
		return ok >= 2 && h.e2.Store().LastSeq() >= 2
	})
}

func TestSaveImmediateCheckpoint(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e1,
		CheckpointPeriod: 10 * time.Second, // periodic effectively off
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	state := &appState{Count: 9}
	_ = f.RegisterState("state", state)

	if err := f.Save(); err != nil {
		t.Fatal(err)
	}
	if h.e2.Store().LastSeq() == 0 {
		t.Fatal("OFTTSave did not ship immediately")
	}
}

func TestSaveRefusedOnBackup(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{Component: "app", Engine: h.e2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	if err := f.Save(); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("got %v", err)
	}
}

func TestFailoverRestoresState(t *testing.T) {
	h := newHarness(t)

	// Primary app with state.
	fp, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e1,
		CheckpointPeriod: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stateP := &appState{}
	_ = fp.RegisterState("state", stateP)

	// Backup app, same binary shape.
	restoredCh := make(chan bool, 1)
	stateB := &appState{}
	fb, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e2,
		CheckpointPeriod: 10 * time.Millisecond,
		OnActivate:       func(restored bool) { restoredCh <- restored },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Shutdown()
	_ = fb.RegisterState("state", stateB)

	// Primary makes progress; OFTTSave pushes it to the backup synchronously.
	fp.WithLock(func() {
		stateP.Count = 1234
		stateP.Hist = []int64{1, 2, 3}
	})
	if err := fp.Save(); err != nil {
		t.Fatal(err)
	}

	// Primary node dies (scenario a).
	h.node1.PowerOff()
	select {
	case restored := <-restoredCh:
		if !restored {
			t.Fatal("takeover without restore despite checkpoints")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("backup never activated")
	}
	fb.WithLock(func() {
		if stateB.Count != 1234 || len(stateB.Hist) != 3 {
			t.Fatalf("state lost in failover: %+v", stateB)
		}
	})
}

func TestNewPrimaryResumesCheckpointingAfterFailback(t *testing.T) {
	h := newHarness(t)
	fp, _ := Initialize(Config{Component: "app", Engine: h.e1,
		CheckpointPeriod: 10 * time.Millisecond})
	stateP := &appState{}
	_ = fp.RegisterState("state", stateP)
	fb, _ := Initialize(Config{Component: "app", Engine: h.e2,
		CheckpointPeriod: 10 * time.Millisecond})
	defer fb.Shutdown()
	stateB := &appState{}
	_ = fb.RegisterState("state", stateB)

	fp.WithLock(func() { stateP.Count = 5 })
	waitFor(t, "initial checkpoints", func() bool { return h.e2.Store().LastSeq() >= 1 })

	// Commanded switchover: e2 becomes primary and must now ship
	// checkpoints back to e1's store (which was reset on demotion).
	if err := h.e1.RequestSwitchover("failback test"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "roles swapped", func() bool {
		return h.e2.Role() == engine.RolePrimary && h.e1.Role() == engine.RoleBackup
	})
	fb.WithLock(func() { stateB.Count = 77 })
	// The new primary's checkpoint stream must reach the demoted node's
	// (reset) store, re-basing with a full snapshot if its first frames
	// were rejected.
	waitFor(t, "reverse checkpoint flow", func() bool { return h.e1.Store().LastSeq() >= 1 })
}

func TestSelSaveLimitsCheckpoint(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e1,
		Mode:             CaptureSelective,
		CheckpointPeriod: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	small := int64(1)
	big := make([]byte, 1<<16)
	_ = f.RegisterState("small", &small)
	_ = f.RegisterState("big", &big)
	if err := f.SelSave("small"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "selective checkpoints", func() bool {
		ok, _ := f.CheckpointStats()
		return ok >= 2
	})
}

func TestDynamicTaskTracking(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{
		Component:        "app",
		Engine:           h.e1,
		CheckpointPeriod: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()

	taskState := &appState{Count: 3}
	started := make(chan struct{})
	if err := f.Go("worker", taskState, func(stop <-chan struct{}) {
		close(started)
		<-stop
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	// The task's state region participates in the walkthrough.
	found := false
	for _, r := range f.Registry().Regions() {
		if r == "task:worker" {
			found = true
		}
	}
	if !found {
		t.Fatalf("task state not registered: %v", f.Registry().Regions())
	}
	if len(f.Tasks()) != 1 {
		t.Fatalf("tasks: %v", f.Tasks())
	}

	// Duplicate task names are refused.
	if err := f.Go("worker", nil, func(<-chan struct{}) {}); err == nil {
		t.Fatal("duplicate task accepted")
	}

	f.StopTask("worker")
	waitFor(t, "task cleanup", func() bool { return len(f.Tasks()) == 0 })
	for _, r := range f.Registry().Regions() {
		if r == "task:worker" {
			t.Fatal("task region leaked after exit")
		}
	}
}

func TestWatchdogDistressCausesSwitchover(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{Component: "app", Engine: h.e1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()

	if err := f.WatchdogCreate("scan-deadline"); err != nil {
		t.Fatal(err)
	}
	if err := f.WatchdogSet("scan-deadline", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Never reset: the watchdog bites, raising distress -> switchover.
	waitFor(t, "watchdog switchover", func() bool {
		return h.e2.Role() == engine.RolePrimary
	})
}

func TestWatchdogResetPreventsDistress(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{Component: "app", Engine: h.e1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	_ = f.WatchdogCreate("wd")
	_ = f.WatchdogSet("wd", 40*time.Millisecond)
	for i := 0; i < 8; i++ {
		time.Sleep(10 * time.Millisecond)
		if err := f.WatchdogReset("wd"); err != nil {
			t.Fatal(err)
		}
	}
	if h.e1.Role() != engine.RolePrimary {
		t.Fatal("healthy watchdog caused switchover")
	}
	_ = f.WatchdogDelete("wd")
}

func TestShutdownStopsEverything(t *testing.T) {
	h := newHarness(t)
	f, err := Initialize(Config{Component: "app", Engine: h.e1,
		CheckpointPeriod: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var taskStopped sync.WaitGroup
	taskStopped.Add(1)
	_ = f.Go("w", nil, func(stop <-chan struct{}) {
		defer taskStopped.Done()
		<-stop
	})
	f.Shutdown()
	taskStopped.Wait()
	if err := f.Save(); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Save after shutdown: %v", err)
	}
	if err := f.Go("x", nil, func(<-chan struct{}) {}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Go after shutdown: %v", err)
	}
	f.Shutdown() // idempotent
}

func TestServerFTIMIsStateless(t *testing.T) {
	h := newHarness(t)
	sf, err := InitializeServer(ServerConfig{Component: "opcserver", Engine: h.e1})
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Shutdown()
	if sf.MyRole() != engine.RolePrimary {
		t.Fatalf("role: %v", sf.MyRole())
	}
	// No checkpoints ever flow from a server FTIM.
	time.Sleep(100 * time.Millisecond)
	if h.e2.Store().LastSeq() != 0 {
		t.Fatal("server FTIM shipped checkpoints")
	}
	comps := h.e1.Components()
	if len(comps) != 1 || comps[0] != "opcserver" {
		t.Fatalf("components: %v", comps)
	}
}

func TestServerFTIMValidation(t *testing.T) {
	if _, err := InitializeServer(ServerConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := InitializeServer(ServerConfig{Component: "x"}); err == nil {
		t.Fatal("missing engine accepted")
	}
}

func TestHeartbeatsKeepComponentAlive(t *testing.T) {
	h := newHarness(t)
	restarts := make(chan struct{}, 4)
	f, err := Initialize(Config{
		Component:         "app",
		Engine:            h.e1,
		HeartbeatInterval: 5 * time.Millisecond,
		Timeout:           30 * time.Millisecond,
		Restart:           func() error { restarts <- struct{}{}; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Shutdown()
	select {
	case <-restarts:
		t.Fatal("healthy component was restarted")
	case <-time.After(150 * time.Millisecond):
	}
}

package dcom

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/netsim"
)

// calcService is a test object with a representative method surface.
type calcService struct {
	mu    sync.Mutex
	calls int
}

func (c *calcService) Add(a, b int64) int64 {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return a + b
}

func (c *calcService) Divide(a, b float64) (float64, error) {
	if b == 0 {
		return 0, errors.New("division by zero")
	}
	return a / b, nil
}

func (c *calcService) Describe(name string, scores map[string]int64) (string, int64, error) {
	total := int64(0)
	for _, v := range scores {
		total += v
	}
	return "hello " + name, total, nil
}

func (c *calcService) Nothing() {}

func setup(t *testing.T) (*netsim.Network, *Exporter, *Client, ObjectID, *calcService) {
	t.Helper()
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "server:rpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exp.Close)
	svc := &calcService{}
	oid := com.NewGUID()
	if err := exp.Export(oid, svc); err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(n, "client:rpc", "server:rpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return n, exp, cli, oid, svc
}

func TestBasicCall(t *testing.T) {
	_, _, cli, oid, svc := setup(t)
	p := cli.Object(oid)
	var sum int64
	if err := p.Call("Add", []any{&sum}, int64(2), int64(40)); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
	if svc.calls != 1 {
		t.Fatalf("service saw %d calls", svc.calls)
	}
}

func TestMultipleResults(t *testing.T) {
	_, _, cli, oid, _ := setup(t)
	p := cli.Object(oid)
	var greeting string
	var total int64
	err := p.Call("Describe", []any{&greeting, &total},
		"operator", map[string]int64{"a": 1, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	if greeting != "hello operator" || total != 3 {
		t.Fatalf("got %q %d", greeting, total)
	}
}

func TestVoidMethod(t *testing.T) {
	_, _, cli, oid, _ := setup(t)
	if err := cli.Object(oid).Call("Nothing", nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteError(t *testing.T) {
	_, _, cli, oid, _ := setup(t)
	var out float64
	err := cli.Object(oid).Call("Divide", []any{&out}, 1.0, 0.0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if re.Msg != "division by zero" {
		t.Fatalf("msg = %q", re.Msg)
	}
	// Remote errors do not poison the connection.
	var ok float64
	if err := cli.Object(oid).Call("Divide", []any{&ok}, 10.0, 4.0); err != nil {
		t.Fatal(err)
	}
	if ok != 2.5 {
		t.Fatalf("ok = %v", ok)
	}
}

func TestNoSuchObject(t *testing.T) {
	_, _, cli, _, _ := setup(t)
	err := cli.Object(com.NewGUID()).Call("Add", nil, int64(1), int64(2))
	if !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("got %v", err)
	}
}

func TestNoSuchMethod(t *testing.T) {
	_, _, cli, oid, _ := setup(t)
	err := cli.Object(oid).Call("Missing", nil)
	if !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("got %v", err)
	}
}

func TestArgCountMismatch(t *testing.T) {
	_, _, cli, oid, _ := setup(t)
	var sum int64
	if err := cli.Object(oid).Call("Add", []any{&sum}, int64(1)); err == nil {
		t.Fatal("expected badcall error")
	}
}

func TestUnexport(t *testing.T) {
	_, exp, cli, oid, _ := setup(t)
	exp.Unexport(oid)
	err := cli.Object(oid).Call("Add", nil, int64(1), int64(2))
	if !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("got %v", err)
	}
}

func TestCalleeDeathPoisonsProxyAndRedialRecovers(t *testing.T) {
	n, _, cli, oid, _ := setup(t)
	p := cli.Object(oid)
	var sum int64
	if err := p.Call("Add", []any{&sum}, int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}

	// Kill the callee's endpoint mid-life: the paper's Section 3.3 failure.
	n.FailEndpoint("server:rpc")
	err := p.Call("Add", []any{&sum}, int64(1), int64(1))
	if !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("call to dead callee: %v", err)
	}
	if !cli.Broken() {
		t.Fatal("client should be poisoned")
	}
	// Further calls fail fast without touching the network.
	if err := p.Call("Add", []any{&sum}, int64(1), int64(1)); !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("poisoned call: %v", err)
	}

	// Redial fails while the callee is still down...
	if err := cli.Redial(); !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("redial to dead callee: %v", err)
	}
	// ...and succeeds once the callee restarts (its old listener died with
	// it, so a fresh exporter re-binds and re-exports, as a restarted COM
	// server re-registers its objects).
	n.RestoreEndpoint("server:rpc")
	exp2, err := NewExporter(n, "server:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp2.Close()
	if err := exp2.Export(oid, &calcService{}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Redial(); err != nil {
		t.Fatalf("redial after restart: %v", err)
	}
	if err := p.Call("Add", []any{&sum}, int64(20), int64(22)); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestCallTimeoutPoisons(t *testing.T) {
	n := netsim.New("eth0", 1)
	// A listener that accepts but never answers: a hung callee.
	l, err := n.Listen("hung:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()

	cli, err := Dial(n, "client:rpc", "hung:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(50 * time.Millisecond)
	err = cli.Object(com.NewGUID()).Call("Add", nil, int64(1), int64(2))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("got %v", err)
	}
	if !cli.Broken() {
		t.Fatal("timeout must poison the channel (call fate unknown)")
	}
}

func TestConcurrentClients(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "server:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	svc := &calcService{}
	oid := com.NewGUID()
	if err := exp.Export(oid, svc); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := Dial(n, netsim.Addr(fmt.Sprintf("cli%d:rpc", i)), "server:rpc")
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			p := cli.Object(oid)
			for j := 0; j < 50; j++ {
				var sum int64
				if err := p.Call("Add", []any{&sum}, int64(i), int64(j)); err != nil {
					errs <- err
					return
				}
				if sum != int64(i+j) {
					errs <- fmt.Errorf("sum %d != %d", sum, i+j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if svc.calls != 8*50 {
		t.Fatalf("service saw %d calls, want %d", svc.calls, 8*50)
	}
}

func TestExportNilAndDuplicate(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "server:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Export(com.NewGUID(), nil); err == nil {
		t.Fatal("nil export should fail")
	}
	oid := com.NewGUID()
	if err := exp.Export(oid, &calcService{}); err != nil {
		t.Fatal(err)
	}
	if err := exp.Export(oid, &calcService{}); err == nil {
		t.Fatal("duplicate OID should fail")
	}
}

func TestExporterCloseBreaksClients(t *testing.T) {
	_, exp, cli, oid, _ := setup(t)
	exp.Close()
	var sum int64
	err := cli.Object(oid).Call("Add", []any{&sum}, int64(1), int64(2))
	if !errors.Is(err, ErrRPCFailure) && !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("got %v", err)
	}
}

func BenchmarkRemoteCall(b *testing.B) {
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "server:rpc")
	if err != nil {
		b.Fatal(err)
	}
	defer exp.Close()
	oid := com.NewGUID()
	if err := exp.Export(oid, &calcService{}); err != nil {
		b.Fatal(err)
	}
	cli, err := Dial(n, "client:rpc", "server:rpc")
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	p := cli.Object(oid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		if err := p.Call("Add", []any{&sum}, int64(i), int64(1)); err != nil {
			b.Fatal(err)
		}
	}
}

package dcom

// The pre-multiplexing client, kept verbatim as a test-only baseline: one
// synchronous call in flight per connection, reply read with RecvTimeout
// on the calling goroutine. BenchmarkDCOMConcurrent pits it against the
// multiplexed client (impl=oneconn vs impl=mux), and the compat test
// below proves the concurrent exporter still serves the old wire dance.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/ndr"
	"repro/internal/netsim"
)

// echoSvc is the minimal exported service shared by the mux tests and the
// concurrent benchmark: Echo returns its argument, Pad returns n bytes.
type echoSvc struct{}

func (echoSvc) Echo(s string) string { return s }

func (echoSvc) Pad(n int64) []byte { return make([]byte, n) }

type refClient struct {
	dial func() (netsim.FrameConn, error)
	to   netsim.Addr

	timeout time.Duration

	mu     sync.Mutex
	conn   netsim.FrameConn
	nextID uint64
	broken bool

	argBuf   []byte
	argOffs  []int
	frameBuf []byte
}

func refDial(n *netsim.Network, from, to netsim.Addr) (*refClient, error) {
	dial := func() (netsim.FrameConn, error) { return n.Dial(from, to) }
	return refDialWith(dial, to)
}

func refDialTCP(addr string) (*refClient, error) {
	dial := func() (netsim.FrameConn, error) { return netsim.DialTCP(addr) }
	return refDialWith(dial, netsim.Addr(addr))
}

func refDialWith(dial func() (netsim.FrameConn, error), to netsim.Addr) (*refClient, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrRPCFailure, to, err)
	}
	return &refClient{dial: dial, to: to, timeout: 2 * time.Second, conn: conn}, nil
}

func (c *refClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.broken = true
}

func (c *refClient) call(oid ObjectID, method string, out []any, args []any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken || c.conn == nil {
		return fmt.Errorf("%w: connection poisoned; Redial required", ErrRPCFailure)
	}

	c.nextID++
	buf := c.argBuf[:0]
	offs := append(c.argOffs[:0], 0)
	for i, a := range args {
		var err error
		buf, err = ndr.MarshalTo(buf, a)
		if err != nil {
			return fmt.Errorf("dcom: marshal arg %d of %s: %w", i, method, err)
		}
		offs = append(offs, len(buf))
	}
	c.argBuf, c.argOffs = buf, offs
	req := request{ID: c.nextID, OID: oid, Method: method, Args: make([][]byte, len(args))}
	for i := range args {
		req.Args[i] = buf[offs[i]:offs[i+1]:offs[i+1]]
	}
	frame, err := ndr.MarshalToDeref(c.frameBuf[:0], &req)
	if err != nil {
		return fmt.Errorf("dcom: marshal request: %w", err)
	}
	c.frameBuf = frame

	if err := c.conn.Send(frame); err != nil {
		c.broken = true
		return fmt.Errorf("%w: send %s: %v", ErrRPCFailure, method, err)
	}
	raw, err := c.conn.RecvTimeout(c.timeout)
	if err != nil {
		c.broken = true
		if errors.Is(err, netsim.ErrTimeout) {
			return fmt.Errorf("%w: %s", ErrCallTimeout, method)
		}
		return fmt.Errorf("%w: recv %s: %v", ErrRPCFailure, method, err)
	}

	var rep reply
	if err := ndr.Unmarshal(raw, &rep); err != nil {
		c.broken = true
		return fmt.Errorf("%w: corrupt reply: %v", ErrRPCFailure, err)
	}
	if rep.ID != req.ID {
		c.broken = true
		return fmt.Errorf("%w: reply ID mismatch", ErrRPCFailure)
	}
	return decodeReply(&rep, oid, method, out)
}

// TestRefClientAgainstConcurrentExporter proves wire compatibility: the
// old serial client speaks to the rebuilt exporter with no changes.
func TestRefClientAgainstConcurrentExporter(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	oid := com.NewGUID()
	if err := exp.Export(oid, &echoSvc{}); err != nil {
		t.Fatal(err)
	}

	cli, err := refDial(n, "cli:rpc", "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 50; i++ {
		var got string
		if err := cli.call(oid, "Echo", []any{&got}, []any{fmt.Sprintf("m%d", i)}); err != nil {
			t.Fatal(err)
		}
		if got != fmt.Sprintf("m%d", i) {
			t.Fatalf("echo %d = %q", i, got)
		}
	}
}

// Package dcom is the distributed-COM analog: it lets a COM-style object on
// one simulated node be invoked from another node over the netsim fabric.
//
// The original OFTT used DCOM's ORPC; Section 3.3 of the paper reports that
// DCOM "does not have a well-defined built-in fault tolerance
// infrastructure" and that "its RPC service does not behave well in the
// presence of failures". This package reproduces exactly those semantics:
// calls in flight when the callee dies fail with transport errors, the
// proxy becomes poisoned and must be re-resolved, and there is no built-in
// retry — the OFTT layers above must compensate, as they did in 1999.
//
// Marshaling rides internal/ndr (the NDR stand-in). Proxies and stubs are
// reflection-driven rather than IDL-generated: method sets are discovered
// with reflect, which substitutes for the proxy/stub generation the paper
// complains about in Section 3.3 (see DESIGN.md, Known deviations).
package dcom

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"

	"repro/internal/com"
	"repro/internal/ndr"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// ObjectID identifies one exported object instance (the OID of ORPC).
type ObjectID = com.GUID

// Errors surfaced by the RPC layer.
var (
	// ErrRPCFailure wraps transport-level failures (peer died, partition).
	ErrRPCFailure = errors.New("dcom: RPC_E_DISCONNECTED")

	// ErrNoSuchObject means the OID is not exported at the callee.
	ErrNoSuchObject = errors.New("dcom: no such object")

	// ErrNoSuchMethod means the method name is not in the stub's table.
	ErrNoSuchMethod = errors.New("dcom: no such method")

	// ErrCallTimeout means the reply did not arrive in time. The connection
	// is poisoned afterwards because the call's fate is unknown.
	ErrCallTimeout = errors.New("dcom: call timeout")
)

// RemoteError carries an application-level error string across the wire.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("dcom: remote %s: %s", e.Method, e.Msg)
}

// request and reply are the ORPC frame analogs.
type request struct {
	ID     uint64
	OID    ObjectID
	Method string
	Args   [][]byte
}

type reply struct {
	ID      uint64
	OK      bool
	Fault   string // transport-visible fault class: "", "noobject", "nomethod", "badcall"
	Err     string // application error (OK true, Err non-empty => method returned error)
	Results [][]byte
}

// stub dispatches calls onto one exported object via reflection.
type stub struct {
	target reflect.Value
	// methods caches name -> method for dispatch.
	methods map[string]reflect.Method
}

func newStub(impl any) (*stub, error) {
	v := reflect.ValueOf(impl)
	if !v.IsValid() {
		return nil, errors.New("dcom: cannot export nil")
	}
	t := v.Type()
	methods := make(map[string]reflect.Method, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		methods[m.Name] = m
	}
	if len(methods) == 0 {
		return nil, fmt.Errorf("dcom: %T exports no methods", impl)
	}
	return &stub{target: v, methods: methods}, nil
}

// invoke decodes args, calls the method, and encodes results. The final
// return value, if of type error, travels as the application error.
//
// Results are encoded back-to-back into *arena (reused across calls on one
// connection) and returned as subslices of it; they are only valid until
// the next invoke with the same arena, which is fine because serveConn
// marshals and sends the reply before looping.
func (s *stub) invoke(method string, rawArgs [][]byte, arena *[]byte) (results [][]byte, appErr string, fault string) {
	m, ok := s.methods[method]
	if !ok {
		return nil, "", "nomethod"
	}
	mt := m.Type
	wantArgs := mt.NumIn() - 1 // minus receiver
	if len(rawArgs) != wantArgs {
		return nil, "", "badcall"
	}
	in := make([]reflect.Value, 0, wantArgs+1)
	in = append(in, s.target)
	for i := 0; i < wantArgs; i++ {
		pv := reflect.New(mt.In(i + 1))
		if err := ndr.Unmarshal(rawArgs[i], pv.Interface()); err != nil {
			return nil, "", "badcall"
		}
		in = append(in, pv.Elem())
	}

	out := m.Func.Call(in)

	n := len(out)
	if n > 0 && mt.Out(n-1) == errType {
		if !out[n-1].IsNil() {
			appErr = out[n-1].Interface().(error).Error()
		}
		out = out[:n-1]
	}
	// Record offsets while appending, subslice once all appends are done:
	// growth may move the backing array, so earlier subslices can't be
	// taken during the loop.
	buf := (*arena)[:0]
	offs := make([]int, len(out)+1)
	for i, ov := range out {
		var err error
		buf, err = ndr.MarshalTo(buf, ov.Interface())
		if err != nil {
			return nil, "", "badcall"
		}
		offs[i+1] = len(buf)
	}
	*arena = buf
	results = make([][]byte, len(out))
	for i := range results {
		results[i] = buf[offs[i]:offs[i+1]:offs[i+1]]
	}
	return results, appErr, ""
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Exporter serves RPC calls for a set of exported objects at one address.
// It runs over either transport: the simulated fabric (NewExporter) or
// real TCP (NewExporterTCP).
type Exporter struct {
	addr     netsim.Addr
	accept   func() (netsim.FrameConn, error)
	closeLst func()

	mu      sync.RWMutex
	objects map[ObjectID]*stub
	conns   map[netsim.FrameConn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewExporter binds an RPC endpoint on the simulated network and serves.
func NewExporter(n *netsim.Network, addr netsim.Addr) (*Exporter, error) {
	l, err := n.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("dcom: bind exporter: %w", err)
	}
	return newExporter(addr,
		func() (netsim.FrameConn, error) { return l.Accept() },
		func() { _ = l.Close() }), nil
}

// NewExporterTCP binds an RPC endpoint on a real TCP address ("host:port",
// port 0 for ephemeral) and serves. Use Addr to discover the bound port.
func NewExporterTCP(addr string) (*Exporter, error) {
	l, err := netsim.ListenTCP(addr)
	if err != nil {
		return nil, fmt.Errorf("dcom: bind tcp exporter: %w", err)
	}
	return newExporter(netsim.Addr(l.Addr()),
		func() (netsim.FrameConn, error) { return l.Accept() },
		func() { _ = l.Close() }), nil
}

func newExporter(addr netsim.Addr, accept func() (netsim.FrameConn, error), closeLst func()) *Exporter {
	e := &Exporter{
		addr:     addr,
		accept:   accept,
		closeLst: closeLst,
		objects:  make(map[ObjectID]*stub),
		conns:    make(map[netsim.FrameConn]struct{}),
		closed:   make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e
}

// Export publishes impl under oid. All exported methods become callable.
func (e *Exporter) Export(oid ObjectID, impl any) error {
	s, err := newStub(impl)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.objects[oid]; dup {
		return fmt.Errorf("dcom: OID %s already exported", oid)
	}
	e.objects[oid] = s
	return nil
}

// Unexport withdraws an object; subsequent calls get ErrNoSuchObject.
func (e *Exporter) Unexport(oid ObjectID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.objects, oid)
}

// Addr returns the exporter's bound address (for TCP exporters this is
// the resolved "host:port").
func (e *Exporter) Addr() netsim.Addr { return e.addr }

// Close stops serving and waits for connection handlers to drain. Open
// connections are closed explicitly: a real TCP listener's close does not
// break accepted sockets the way a dead machine's NIC would.
func (e *Exporter) Close() {
	e.once.Do(func() {
		close(e.closed)
		e.closeLst()
		e.mu.Lock()
		for c := range e.conns {
			_ = c.Close()
		}
		e.mu.Unlock()
	})
	e.wg.Wait()
}

func (e *Exporter) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.serveConn(conn)
	}
}

func (e *Exporter) serveConn(conn netsim.FrameConn) {
	defer e.wg.Done()
	defer conn.Close()
	e.mu.Lock()
	e.conns[conn] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	select {
	case <-e.closed:
		return
	default:
	}
	// Per-connection scratch, reused across every call served on this
	// conn: the decoded request, the result arena, and the reply frame.
	// The transport copies (or fully writes) frames inside Send, so the
	// buffers are free again as soon as Send returns.
	var (
		req      request
		resArena []byte
		frameBuf []byte
	)
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		req = request{}
		if err := ndr.Unmarshal(frame, &req); err != nil {
			return // corrupt peer; drop the conn
		}
		rep := e.dispatch(&req, &resArena)
		frameBuf, err = ndr.MarshalToDeref(frameBuf[:0], &rep)
		if err != nil {
			return
		}
		if err := conn.Send(frameBuf); err != nil {
			return
		}
	}
}

func (e *Exporter) dispatch(req *request, resArena *[]byte) reply {
	e.mu.RLock()
	s, ok := e.objects[req.OID]
	e.mu.RUnlock()
	if !ok {
		return reply{ID: req.ID, Fault: "noobject"}
	}
	results, appErr, fault := s.invoke(req.Method, req.Args, resArena)
	if fault != "" {
		return reply{ID: req.ID, Fault: fault}
	}
	return reply{ID: req.ID, OK: true, Err: appErr, Results: results}
}

// Client is a connection to a remote exporter. One Client multiplexes many
// proxies; calls are serialized per connection (as a single ORPC channel).
// It runs over either transport (Dial for the simulated fabric, DialTCP
// for real sockets).
type Client struct {
	dial func() (netsim.FrameConn, error)
	to   netsim.Addr

	timeout time.Duration

	mu     sync.Mutex
	conn   netsim.FrameConn
	nextID uint64
	broken bool

	// Reusable encode scratch, guarded by mu (calls are serialized per
	// connection anyway). argBuf holds all of one call's args back-to-back,
	// argOffs the boundaries, frameBuf the marshaled request frame.
	argBuf   []byte
	argOffs  []int
	frameBuf []byte

	ins Instruments
}

// Instruments are the client's optional per-call metrics; zero-value
// fields record nothing.
type Instruments struct {
	// CallLatency observes marshal → reply-decoded round-trip time, µs.
	CallLatency *telemetry.Histogram
	// FrameBytes observes marshaled request-frame sizes.
	FrameBytes *telemetry.Histogram
	// Errors counts failed calls (transport faults, timeouts, remote
	// errors alike).
	Errors *telemetry.Counter
}

// Instrument installs per-call metrics on this client.
func (c *Client) Instrument(ins Instruments) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ins = ins
}

// Dial connects to the exporter at `to` on the simulated network,
// originating from endpoint `from`.
func Dial(n *netsim.Network, from, to netsim.Addr) (*Client, error) {
	dial := func() (netsim.FrameConn, error) { return n.Dial(from, to) }
	return dialWith(dial, to)
}

// DialTCP connects to a TCP exporter at addr ("host:port").
func DialTCP(addr string) (*Client, error) {
	dial := func() (netsim.FrameConn, error) { return netsim.DialTCP(addr) }
	return dialWith(dial, netsim.Addr(addr))
}

func dialWith(dial func() (netsim.FrameConn, error), to netsim.Addr) (*Client, error) {
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrRPCFailure, to, err)
	}
	return &Client{dial: dial, to: to, timeout: 2 * time.Second, conn: conn}, nil
}

// SetTimeout configures the per-call reply deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Redial replaces a broken transport with a fresh connection. The OFTT
// engine calls this after a switchover, when the exporter has moved or
// restarted — DCOM itself offers no such recovery (Section 3.3).
func (c *Client) Redial() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
	conn, err := c.dial()
	if err != nil {
		c.broken = true
		return fmt.Errorf("%w: redial %s: %v", ErrRPCFailure, c.to, err)
	}
	c.conn = conn
	c.broken = false
	return nil
}

// Broken reports whether the transport is poisoned.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Close tears the connection down.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.broken = true
}

// Proxy is a typed handle to one remote object.
type Proxy struct {
	client *Client
	oid    ObjectID
}

// Object returns a proxy for the given OID.
func (c *Client) Object(oid ObjectID) *Proxy {
	return &Proxy{client: c, oid: oid}
}

// OID returns the proxied object's identity.
func (p *Proxy) OID() ObjectID { return p.oid }

// Call invokes a remote method. args are marshaled positionally; each
// element of out must be a pointer that receives the corresponding result
// (excluding a trailing error, which is returned as *RemoteError).
func (p *Proxy) Call(method string, out []any, args ...any) error {
	return p.client.call(p.oid, method, out, args)
}

func (c *Client) call(oid ObjectID, method string, out []any, args []any) (err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ins.CallLatency != nil || c.ins.Errors != nil {
		start := time.Now()
		defer func() {
			c.ins.CallLatency.ObserveDuration(time.Since(start))
			if err != nil {
				c.ins.Errors.Inc()
			}
		}()
	}
	if c.broken || c.conn == nil {
		return fmt.Errorf("%w: connection poisoned; Redial required", ErrRPCFailure)
	}

	c.nextID++
	// Encode all args back-to-back into one reused arena instead of one
	// fresh slice per arg; offsets are recorded during the appends and the
	// arg subslices taken only afterwards, since growth may relocate the
	// backing array.
	buf := c.argBuf[:0]
	offs := append(c.argOffs[:0], 0)
	for i, a := range args {
		var err error
		buf, err = ndr.MarshalTo(buf, a)
		if err != nil {
			return fmt.Errorf("dcom: marshal arg %d of %s: %w", i, method, err)
		}
		offs = append(offs, len(buf))
	}
	c.argBuf, c.argOffs = buf, offs
	req := request{ID: c.nextID, OID: oid, Method: method, Args: make([][]byte, len(args))}
	for i := range args {
		req.Args[i] = buf[offs[i]:offs[i+1]:offs[i+1]]
	}
	frame, err := ndr.MarshalToDeref(c.frameBuf[:0], &req)
	if err != nil {
		return fmt.Errorf("dcom: marshal request: %w", err)
	}
	c.frameBuf = frame
	c.ins.FrameBytes.Observe(int64(len(frame)))

	if err := c.conn.Send(frame); err != nil {
		c.broken = true
		return fmt.Errorf("%w: send %s: %v", ErrRPCFailure, method, err)
	}
	raw, err := c.conn.RecvTimeout(c.timeout)
	if err != nil {
		c.broken = true
		if errors.Is(err, netsim.ErrTimeout) {
			return fmt.Errorf("%w: %s", ErrCallTimeout, method)
		}
		return fmt.Errorf("%w: recv %s: %v", ErrRPCFailure, method, err)
	}

	var rep reply
	if err := ndr.Unmarshal(raw, &rep); err != nil {
		c.broken = true
		return fmt.Errorf("%w: corrupt reply: %v", ErrRPCFailure, err)
	}
	if rep.ID != req.ID {
		c.broken = true
		return fmt.Errorf("%w: reply ID mismatch", ErrRPCFailure)
	}
	switch rep.Fault {
	case "":
	case "noobject":
		return fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	case "nomethod":
		return fmt.Errorf("%w: %s", ErrNoSuchMethod, method)
	default:
		return fmt.Errorf("dcom: bad call to %s", method)
	}
	if rep.Err != "" {
		return &RemoteError{Method: method, Msg: rep.Err}
	}
	if len(out) > len(rep.Results) {
		return fmt.Errorf("dcom: %s returned %d results, caller wants %d",
			method, len(rep.Results), len(out))
	}
	for i, dst := range out {
		if err := ndr.Unmarshal(rep.Results[i], dst); err != nil {
			return fmt.Errorf("dcom: unmarshal result %d of %s: %w", i, method, err)
		}
	}
	return nil
}

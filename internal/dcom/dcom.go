// Package dcom is the distributed-COM analog: it lets a COM-style object on
// one simulated node be invoked from another node over the netsim fabric.
//
// The original OFTT used DCOM's ORPC; Section 3.3 of the paper reports that
// DCOM "does not have a well-defined built-in fault tolerance
// infrastructure" and that "its RPC service does not behave well in the
// presence of failures". This package reproduces exactly those semantics:
// calls in flight when the callee dies fail with transport errors, the
// proxy becomes poisoned and must be re-resolved, and there is no built-in
// retry — the OFTT layers above must compensate, as they did in 1999.
//
// Marshaling rides internal/ndr (the NDR stand-in). Proxies and stubs are
// reflection-driven rather than IDL-generated: method sets are discovered
// with reflect, which substitutes for the proxy/stub generation the paper
// complains about in Section 3.3 (see DESIGN.md, Known deviations).
package dcom

import (
	"errors"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/com"
	"repro/internal/ndr"
	"repro/internal/netsim"
)

// ObjectID identifies one exported object instance (the OID of ORPC).
type ObjectID = com.GUID

// Errors surfaced by the RPC layer.
var (
	// ErrRPCFailure wraps transport-level failures (peer died, partition).
	ErrRPCFailure = errors.New("dcom: RPC_E_DISCONNECTED")

	// ErrNoSuchObject means the OID is not exported at the callee.
	ErrNoSuchObject = errors.New("dcom: no such object")

	// ErrNoSuchMethod means the method name is not in the stub's table.
	ErrNoSuchMethod = errors.New("dcom: no such method")

	// ErrCallTimeout means the reply did not arrive in time. The connection
	// is poisoned afterwards because the call's fate is unknown.
	ErrCallTimeout = errors.New("dcom: call timeout")

	// ErrCallCanceled means an async call's Wait context ended before the
	// reply. Only that call is abandoned; the connection stays healthy and
	// the late reply is dropped by the demux loop.
	ErrCallCanceled = errors.New("dcom: call canceled")
)

// RemoteError carries an application-level error string across the wire.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("dcom: remote %s: %s", e.Method, e.Msg)
}

// request and reply are the ORPC frame analogs.
type request struct {
	ID     uint64
	OID    ObjectID
	Method string
	Args   [][]byte
}

type reply struct {
	ID      uint64
	OK      bool
	Fault   string // transport-visible fault class: "", "noobject", "nomethod", "badcall"
	Err     string // application error (OK true, Err non-empty => method returned error)
	Results [][]byte
}

// stub dispatches calls onto one exported object via reflection.
type stub struct {
	target reflect.Value
	// methods caches name -> method for dispatch.
	methods map[string]reflect.Method
}

func newStub(impl any) (*stub, error) {
	v := reflect.ValueOf(impl)
	if !v.IsValid() {
		return nil, errors.New("dcom: cannot export nil")
	}
	t := v.Type()
	methods := make(map[string]reflect.Method, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		m := t.Method(i)
		methods[m.Name] = m
	}
	if len(methods) == 0 {
		return nil, fmt.Errorf("dcom: %T exports no methods", impl)
	}
	return &stub{target: v, methods: methods}, nil
}

// invoke decodes args, calls the method, and encodes results. The final
// return value, if of type error, travels as the application error.
//
// Results are encoded back-to-back into *arena (reused across calls on one
// connection) and returned as subslices of it; they are only valid until
// the next invoke with the same arena, which is fine because serveConn
// marshals and sends the reply before looping.
func (s *stub) invoke(method string, rawArgs [][]byte, arena *[]byte) (results [][]byte, appErr string, fault string) {
	m, ok := s.methods[method]
	if !ok {
		return nil, "", "nomethod"
	}
	mt := m.Type
	wantArgs := mt.NumIn() - 1 // minus receiver
	if len(rawArgs) != wantArgs {
		return nil, "", "badcall"
	}
	in := make([]reflect.Value, 0, wantArgs+1)
	in = append(in, s.target)
	for i := 0; i < wantArgs; i++ {
		pv := reflect.New(mt.In(i + 1))
		if err := ndr.Unmarshal(rawArgs[i], pv.Interface()); err != nil {
			return nil, "", "badcall"
		}
		in = append(in, pv.Elem())
	}

	out := m.Func.Call(in)

	n := len(out)
	if n > 0 && mt.Out(n-1) == errType {
		if !out[n-1].IsNil() {
			appErr = out[n-1].Interface().(error).Error()
		}
		out = out[:n-1]
	}
	// Record offsets while appending, subslice once all appends are done:
	// growth may move the backing array, so earlier subslices can't be
	// taken during the loop.
	buf := (*arena)[:0]
	offs := make([]int, len(out)+1)
	for i, ov := range out {
		var err error
		buf, err = ndr.MarshalTo(buf, ov.Interface())
		if err != nil {
			return nil, "", "badcall"
		}
		offs[i+1] = len(buf)
	}
	*arena = buf
	results = make([][]byte, len(out))
	for i := range results {
		results[i] = buf[offs[i]:offs[i+1]:offs[i+1]]
	}
	return results, appErr, ""
}

var errType = reflect.TypeOf((*error)(nil)).Elem()

// Exporter serves RPC calls for a set of exported objects at one address.
// It runs over either transport: the simulated fabric (NewExporter) or
// real TCP (NewExporterTCP).
type Exporter struct {
	addr     netsim.Addr
	accept   func() (netsim.FrameConn, error)
	closeLst func()

	mu      sync.RWMutex
	objects map[ObjectID]*stub
	conns   map[netsim.FrameConn]struct{}

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewExporter binds an RPC endpoint on the simulated network and serves.
func NewExporter(n *netsim.Network, addr netsim.Addr) (*Exporter, error) {
	l, err := n.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("dcom: bind exporter: %w", err)
	}
	return newExporter(addr,
		func() (netsim.FrameConn, error) { return l.Accept() },
		func() { _ = l.Close() }), nil
}

// NewExporterTCP binds an RPC endpoint on a real TCP address ("host:port",
// port 0 for ephemeral) and serves. Use Addr to discover the bound port.
func NewExporterTCP(addr string) (*Exporter, error) {
	l, err := netsim.ListenTCP(addr)
	if err != nil {
		return nil, fmt.Errorf("dcom: bind tcp exporter: %w", err)
	}
	return newExporter(netsim.Addr(l.Addr()),
		func() (netsim.FrameConn, error) { return l.Accept() },
		func() { _ = l.Close() }), nil
}

func newExporter(addr netsim.Addr, accept func() (netsim.FrameConn, error), closeLst func()) *Exporter {
	e := &Exporter{
		addr:     addr,
		accept:   accept,
		closeLst: closeLst,
		objects:  make(map[ObjectID]*stub),
		conns:    make(map[netsim.FrameConn]struct{}),
		closed:   make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e
}

// Export publishes impl under oid. All exported methods become callable.
func (e *Exporter) Export(oid ObjectID, impl any) error {
	s, err := newStub(impl)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.objects[oid]; dup {
		return fmt.Errorf("dcom: OID %s already exported", oid)
	}
	e.objects[oid] = s
	return nil
}

// Unexport withdraws an object; subsequent calls get ErrNoSuchObject.
func (e *Exporter) Unexport(oid ObjectID) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.objects, oid)
}

// Addr returns the exporter's bound address (for TCP exporters this is
// the resolved "host:port").
func (e *Exporter) Addr() netsim.Addr { return e.addr }

// Close stops serving and waits for connection handlers to drain. Open
// connections are closed explicitly: a real TCP listener's close does not
// break accepted sockets the way a dead machine's NIC would.
func (e *Exporter) Close() {
	e.once.Do(func() {
		close(e.closed)
		e.closeLst()
		e.mu.Lock()
		for c := range e.conns {
			_ = c.Close()
		}
		e.mu.Unlock()
	})
	e.wg.Wait()
}

func (e *Exporter) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.serveConn(conn)
	}
}

// serverMaxConcurrent caps the handler goroutines running per connection.
// A pipelined client can have hundreds of calls in flight; the cap keeps a
// slow method from fanning out unboundedly while still letting independent
// calls overlap.
const serverMaxConcurrent = 64

// srvSlot is pooled per-call server state: the raw request frame (the
// decode arena — Args alias it), the decoded request, the result encode
// arena, and the marshaled reply frame. The reply coalescer copies the
// frame at enqueue, so the slot recycles as soon as the handler returns.
type srvSlot struct {
	raw    []byte
	req    request
	arena  []byte
	repBuf []byte
}

var srvSlotPool = sync.Pool{New: func() any { return new(srvSlot) }}

// serveConn reads request frames and dispatches each on its own handler
// goroutine, so one connection serves many calls concurrently — the
// server half of multiplexing. Replies funnel through a per-connection
// flush coalescer and may leave in any order; the call ID echoed in each
// reply is what routes it home. On connection end the handlers drain and
// their replies flush BEFORE the conn closes, so Exporter.Close never
// strands a call whose handler already ran.
func (e *Exporter) serveConn(conn netsim.FrameConn) {
	defer e.wg.Done()
	e.mu.Lock()
	e.conns[conn] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	select {
	case <-e.closed:
		conn.Close()
		return
	default:
	}

	wr := newCoalescer(conn, 0, 0, nil, nil)
	br, _ := conn.(netsim.BufRecver)
	sem := make(chan struct{}, serverMaxConcurrent)
	var hwg sync.WaitGroup
	for {
		slot := srvSlotPool.Get().(*srvSlot)
		var raw []byte
		var err error
		if br != nil {
			raw, err = br.RecvBuf(slot.raw)
			if err == nil {
				slot.raw = raw
			}
		} else {
			raw, err = conn.Recv()
			if err == nil {
				slot.raw = raw // owned fabric frame; Args below alias it
			}
		}
		if err == nil {
			slot.req = request{}
			if derr := ndr.UnmarshalShared(raw, &slot.req); derr != nil {
				err = derr // corrupt peer; drop the conn
			}
		}
		if err != nil {
			srvSlotPool.Put(slot)
			break
		}
		sem <- struct{}{}
		hwg.Add(1)
		go func(slot *srvSlot) {
			defer hwg.Done()
			e.serveCall(wr, slot)
			<-sem
		}(slot)
	}
	hwg.Wait()    // in-flight handlers finish...
	wr.close(true) // ...their replies flush...
	conn.Close()   // ...then the connection drops.
}

func (e *Exporter) serveCall(wr *coalescer, slot *srvSlot) {
	rep := e.dispatch(&slot.req, &slot.arena)
	frame, err := ndr.MarshalToDeref(slot.repBuf[:0], &rep)
	if err == nil {
		slot.repBuf = frame
		_ = wr.enqueue(frame) // conn failure surfaces on the next Recv
	}
	slot.req = request{}
	srvSlotPool.Put(slot)
}

func (e *Exporter) dispatch(req *request, resArena *[]byte) reply {
	e.mu.RLock()
	s, ok := e.objects[req.OID]
	e.mu.RUnlock()
	if !ok {
		return reply{ID: req.ID, Fault: "noobject"}
	}
	results, appErr, fault := s.invoke(req.Method, req.Args, resArena)
	if fault != "" {
		return reply{ID: req.ID, Fault: fault}
	}
	return reply{ID: req.ID, OK: true, Err: appErr, Results: results}
}

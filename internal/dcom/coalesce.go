package dcom

import (
	"sync"
	"time"

	"repro/internal/netsim"
)

// Flush-coalescer defaults. FlushBytes bounds one transport send; a zero
// flush delay means natural batching: whatever queued while the previous
// batch was on the wire goes out as the next batch, so an idle connection
// sends immediately and a busy one merges back-to-back frames.
const (
	defaultFlushBytes = 64 << 10
	maxCoalesceBuf    = 1 << 20 // retained staging capacity cap
)

// coalescer funnels all of a connection's outbound frames through one
// writer, merging back-to-back frames into a single transport send
// (netsim.BatchSender when available, per-frame Send otherwise). Frames
// are copied into an internal staging buffer at enqueue, so callers get
// their encode scratch back immediately; the flusher swaps staging buffers
// and ships whole batches without holding the queue lock across the wire.
type coalescer struct {
	conn     netsim.FrameConn
	batch    netsim.BatchSender // nil when the transport lacks the hook
	maxBytes int
	delay    time.Duration      // >0: linger this long to let a batch form
	onBatch  func(frames int)   // write-batch-size telemetry hook
	onErr    func(err error)    // first transport failure (poison/drop hook)

	mu      sync.Mutex
	sendMu  sync.Mutex // serializes actual transport writes (inline fast path)
	buf     []byte
	offs    []int // frame ends into buf; offs[0] == 0 sentinel
	closing bool
	failed  bool
	wake    chan struct{}
	done    chan struct{}
}

func newCoalescer(conn netsim.FrameConn, maxBytes int, delay time.Duration,
	onBatch func(int), onErr func(error)) *coalescer {
	if maxBytes <= 0 {
		maxBytes = defaultFlushBytes
	}
	batch, _ := conn.(netsim.BatchSender)
	w := &coalescer{
		conn:     conn,
		batch:    batch,
		maxBytes: maxBytes,
		delay:    delay,
		onBatch:  onBatch,
		onErr:    onErr,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

// enqueue stages one frame for transmission. It never blocks on the wire.
// When the queue is empty and no flush is in progress, the frame is sent
// inline from the caller's goroutine — the synchronous single-caller path
// keeps its old latency instead of paying two scheduler hops.
func (w *coalescer) enqueue(frame []byte) error {
	if w.delay == 0 && w.sendMu.TryLock() {
		w.mu.Lock()
		if w.closing || w.failed {
			w.mu.Unlock()
			w.sendMu.Unlock()
			return netsim.ErrClosed
		}
		if len(w.offs) <= 1 {
			// Queue empty: nothing would be reordered by sending now.
			w.mu.Unlock()
			err := w.sendOne(frame)
			w.sendMu.Unlock()
			if err != nil {
				w.fail(err)
			}
			return err
		}
		w.mu.Unlock()
		w.sendMu.Unlock()
	}
	w.mu.Lock()
	if w.closing || w.failed {
		w.mu.Unlock()
		return netsim.ErrClosed
	}
	if len(w.offs) == 0 {
		w.offs = append(w.offs, 0)
	}
	w.buf = append(w.buf, frame...)
	w.offs = append(w.offs, len(w.buf))
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return nil
}

// close stops the flusher and waits for it to exit. With drain set, frames
// already queued are flushed first — the exporter's shutdown path, so
// replies for calls in flight when Close began still go out before the
// connection drops. Without drain the queue is discarded (client teardown:
// the calls are failing anyway).
func (w *coalescer) close(drain bool) {
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		<-w.done
		return
	}
	if !drain || w.failed {
		w.buf, w.offs = nil, nil
	}
	w.closing = true
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	<-w.done
}

func (w *coalescer) run() {
	defer close(w.done)
	var frames [][]byte
	var spareBuf []byte
	var spareOffs []int
	for {
		w.mu.Lock()
		for len(w.offs) <= 1 {
			if w.closing || w.failed {
				w.mu.Unlock()
				return
			}
			w.mu.Unlock()
			<-w.wake
			w.mu.Lock()
		}
		if w.delay > 0 && !w.closing {
			// Time-bounded coalescing: linger so back-to-back callers
			// pile onto this batch before it goes out.
			w.mu.Unlock()
			time.Sleep(w.delay)
			w.mu.Lock()
		}
		buf, offs := w.buf, w.offs
		if cap(spareBuf) > maxCoalesceBuf {
			spareBuf = nil
		}
		w.buf, w.offs = spareBuf[:0], spareOffs[:0]
		w.mu.Unlock()

		frames = frames[:0]
		for i := 0; i+1 < len(offs); i++ {
			frames = append(frames, buf[offs[i]:offs[i+1]:offs[i+1]])
		}
		w.sendMu.Lock()
		err := w.sendFrames(frames)
		w.sendMu.Unlock()
		if err != nil {
			w.fail(err)
			return
		}
		spareBuf, spareOffs = buf, offs
	}
}

func (w *coalescer) fail(err error) {
	w.mu.Lock()
	already := w.failed
	w.failed = true
	w.buf, w.offs = nil, nil
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	if !already && w.onErr != nil {
		w.onErr(err)
	}
}

func (w *coalescer) sendOne(frame []byte) error {
	if w.onBatch != nil {
		w.onBatch(1)
	}
	return w.conn.Send(frame)
}

// sendFrames ships a batch, splitting it so no single transport send
// exceeds maxBytes (a frame larger than maxBytes still goes out alone).
func (w *coalescer) sendFrames(frames [][]byte) error {
	if w.onBatch != nil {
		w.onBatch(len(frames))
	}
	if w.batch == nil {
		for _, f := range frames {
			if err := w.conn.Send(f); err != nil {
				return err
			}
		}
		return nil
	}
	start, size := 0, 0
	for i, f := range frames {
		if size > 0 && size+len(f) > w.maxBytes {
			if err := w.batch.SendBatch(frames[start:i]); err != nil {
				return err
			}
			start, size = i, 0
		}
		size += len(f)
	}
	return w.batch.SendBatch(frames[start:])
}

package dcom

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/netsim"
)

// slowSvc lets tests control per-call service time from the client side:
// Sleep(ms) blocks that long, Gate(k) blocks until Release(k).
type slowSvc struct {
	mu    sync.Mutex
	gates map[int64]chan struct{}

	started atomic.Int64
	done    atomic.Int64
}

func newSlowSvc() *slowSvc { return &slowSvc{gates: make(map[int64]chan struct{})} }

func (s *slowSvc) gate(k int64) chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gates[k]
	if !ok {
		g = make(chan struct{})
		s.gates[k] = g
	}
	return g
}

func (s *slowSvc) Sleep(ms int64) int64 {
	s.started.Add(1)
	time.Sleep(time.Duration(ms) * time.Millisecond)
	s.done.Add(1)
	return ms
}

func (s *slowSvc) Gate(k int64) int64 {
	s.started.Add(1)
	<-s.gate(k)
	s.done.Add(1)
	return k
}

func (s *slowSvc) Release(k int64) { close(s.gate(k)) }

func (s *slowSvc) Echo(v int64) int64 { return v }

func muxSetup(t *testing.T, svc any) (*netsim.Network, *Exporter, *Client, ObjectID) {
	t.Helper()
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exp.Close)
	oid := com.NewGUID()
	if err := exp.Export(oid, svc); err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(n, "cli:rpc", "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return n, exp, cli, oid
}

// TestOutOfOrderReplies issues a slow call then fast calls on one
// connection and checks the fast replies overtake the slow one — the
// demux routes each reply to its waiter by call ID, not arrival order.
func TestOutOfOrderReplies(t *testing.T) {
	svc := newSlowSvc()
	_, _, cli, oid := muxSetup(t, svc)
	p := cli.Object(oid)

	var slow int64
	slowF, err := p.CallAsync("Gate", []any{&slow}, int64(1))
	if err != nil {
		t.Fatal(err)
	}
	// The fast calls complete while the slow one is still gated.
	for i := int64(0); i < 20; i++ {
		var got int64
		if err := p.Call("Echo", []any{&got}, i); err != nil {
			t.Fatalf("fast call %d: %v", i, err)
		}
		if got != i {
			t.Fatalf("fast call %d = %d", i, got)
		}
	}
	select {
	case <-slowF.Done():
		t.Fatal("gated call resolved before release")
	default:
	}
	svc.Release(1)
	if err := slowF.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if slow != 1 {
		t.Fatalf("slow result = %d", slow)
	}
	if cli.Broken() {
		t.Fatal("connection should be healthy")
	}
}

// TestAsyncCancelKeepsConnection cancels one in-flight call and checks
// (a) the canceled call fails with ErrCallCanceled, (b) the connection
// survives, and (c) the late reply is dropped rather than misrouted.
func TestAsyncCancelKeepsConnection(t *testing.T) {
	svc := newSlowSvc()
	_, _, cli, oid := muxSetup(t, svc)
	p := cli.Object(oid)

	var out int64
	f, err := p.CallAsync("Gate", []any{&out}, int64(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = f.Wait(ctx)
	if !errors.Is(err, ErrCallCanceled) {
		t.Fatalf("Wait after cancel = %v, want ErrCallCanceled", err)
	}
	if cli.Broken() {
		t.Fatal("cancel must not poison the connection")
	}

	// Let the abandoned call's reply arrive; it must be dropped silently
	// and later calls (with later IDs) must still route correctly.
	svc.Release(7)
	for i := int64(0); i < 10; i++ {
		var got int64
		if err := p.Call("Echo", []any{&got}, i); err != nil {
			t.Fatalf("call after cancel: %v", err)
		}
		if got != i {
			t.Fatalf("call after cancel = %d, want %d", got, i)
		}
	}
	// Waiting again returns the settled error, and out was never scribbled.
	if err := f.Wait(context.Background()); !errors.Is(err, ErrCallCanceled) {
		t.Fatalf("second Wait = %v", err)
	}
	if out != 0 {
		t.Fatalf("canceled call wrote its out pointer: %d", out)
	}
}

// TestConnDropMidPipeline kills the exporter with a window full of
// in-flight calls: every waiter must get an error, none may hang.
func TestConnDropMidPipeline(t *testing.T) {
	svc := newSlowSvc()
	_, exp, cli, oid := muxSetup(t, svc)
	p := cli.Object(oid)

	const n = 32
	futs := make([]*Future, n)
	for i := 0; i < n; i++ {
		f, err := p.CallAsync("Gate", nil, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	exp.Close() // breaks the conn under all n calls

	deadline := time.After(5 * time.Second)
	for i, f := range futs {
		select {
		case <-f.Done():
		case <-deadline:
			t.Fatalf("future %d still unresolved after conn drop", i)
		}
		err := f.Wait(context.Background())
		if err == nil {
			t.Fatalf("future %d resolved nil after conn drop", i)
		}
		if !errors.Is(err, ErrRPCFailure) && !errors.Is(err, ErrCallTimeout) {
			t.Fatalf("future %d error = %v", i, err)
		}
	}
	if !cli.Broken() {
		t.Fatal("conn drop must poison the client")
	}
	// And new calls are refused until Redial.
	if err := p.Call("Echo", nil, int64(1)); !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("call on poisoned client = %v", err)
	}
}

// TestExporterCloseDrainsHandlers is the shutdown-ordering regression:
// Close must not return while a handler goroutine is still running.
func TestExporterCloseDrainsHandlers(t *testing.T) {
	svc := newSlowSvc()
	_, exp, cli, oid := muxSetup(t, svc)
	p := cli.Object(oid)

	f, err := p.CallAsync("Gate", nil, int64(5))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the handler is actually running.
	for i := 0; svc.started.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("handler never started")
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() {
		exp.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a handler was still blocked")
	case <-time.After(50 * time.Millisecond):
	}
	svc.Release(5)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after handlers drained")
	}
	if got := svc.done.Load(); got != 1 {
		t.Fatalf("handler done count = %d, want 1 (drained before Close returned)", got)
	}
	_ = f.Wait(context.Background()) // resolves with an error or the drained reply
}

// TestDialContext covers the context-honoring dial paths.
func TestDialContext(t *testing.T) {
	n := netsim.New("eth0", 1)
	exp, err := NewExporter(n, "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(canceled, n, "cli:rpc", "srv:rpc"); !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("canceled DialContext = %v, want ErrRPCFailure", err)
	}
	if _, err := DialTCPContext(canceled, "127.0.0.1:1"); !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("canceled DialTCPContext = %v, want ErrRPCFailure", err)
	}

	cli, err := DialContext(context.Background(), n, "cli:rpc", "srv:rpc")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	oid := com.NewGUID()
	if err := exp.Export(oid, newSlowSvc()); err != nil {
		t.Fatal(err)
	}
	if err := cli.Object(oid).Call("Echo", nil, int64(1)); err != nil {
		t.Fatal(err)
	}

	// RedialContext with an expired context fails fast and leaves the
	// client poisoned; a live context recovers it.
	cli.Close()
	if err := cli.RedialContext(canceled); !errors.Is(err, ErrRPCFailure) {
		t.Fatalf("canceled RedialContext = %v", err)
	}
	if !cli.Broken() {
		t.Fatal("failed redial should leave client broken")
	}
	if err := cli.RedialContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := cli.Object(oid).Call("Echo", nil, int64(2)); err != nil {
		t.Fatalf("call after redial: %v", err)
	}
}

// TestWindowBackpressure sets a tiny in-flight window and checks CallAsync
// blocks when it is full and unblocks as calls resolve.
func TestWindowBackpressure(t *testing.T) {
	svc := newSlowSvc()
	_, _, cli, oid := muxSetup(t, svc)
	cli.SetWindow(2)
	p := cli.Object(oid)

	f1, err := p.CallAsync("Gate", nil, int64(11))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.CallAsync("Gate", nil, int64(12))
	if err != nil {
		t.Fatal(err)
	}

	third := make(chan *Future, 1)
	go func() {
		f, err := p.CallAsync("Echo", nil, int64(3))
		if err != nil {
			third <- nil
			return
		}
		third <- f
	}()
	select {
	case <-third:
		t.Fatal("third call should block on the full window")
	case <-time.After(50 * time.Millisecond):
	}
	svc.Release(11)
	var f3 *Future
	select {
	case f3 = <-third:
	case <-time.After(5 * time.Second):
		t.Fatal("third call never unblocked")
	}
	if f3 == nil {
		t.Fatal("third call errored")
	}
	if err := f3.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc.Release(12)
	if err := f2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestManyConcurrentCallers hammers one client from many goroutines mixing
// sync and async calls — the -race workout for the demux machinery.
func TestManyConcurrentCallers(t *testing.T) {
	svc := newSlowSvc()
	_, _, cli, oid := muxSetup(t, svc)
	p := cli.Object(oid)

	const callers = 16
	const per = 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				want := int64(g*per + i)
				var got int64
				if g%2 == 0 {
					f, err := p.CallAsync("Echo", []any{&got}, want)
					if err == nil {
						err = f.Wait(context.Background())
					}
					if err != nil {
						errs <- fmt.Errorf("caller %d async %d: %w", g, i, err)
						return
					}
				} else if err := p.Call("Echo", []any{&got}, want); err != nil {
					errs <- fmt.Errorf("caller %d sync %d: %w", g, i, err)
					return
				}
				if got != want {
					errs <- fmt.Errorf("caller %d call %d: got %d", g, i, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if cli.Broken() {
		t.Fatal("client broke under concurrent load")
	}
}

// TestSyncTimeoutStillPoisonsPipeline checks the legacy poison semantics
// hold with other calls in flight: a sync timeout fails everything.
func TestSyncTimeoutStillPoisonsPipeline(t *testing.T) {
	svc := newSlowSvc()
	_, _, cli, oid := muxSetup(t, svc)
	cli.SetTimeout(50 * time.Millisecond)
	p := cli.Object(oid)

	bystander, err := p.CallAsync("Gate", nil, int64(21))
	if err != nil {
		t.Fatal(err)
	}
	err = p.Call("Gate", nil, int64(22))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("sync call = %v, want ErrCallTimeout", err)
	}
	if !cli.Broken() {
		t.Fatal("sync timeout must poison the client")
	}
	if err := bystander.Wait(context.Background()); err == nil {
		t.Fatal("bystander future survived the poisoning")
	}
	svc.Release(21)
	svc.Release(22)
}

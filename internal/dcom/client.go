package dcom

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ndr"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Transport tuning defaults.
const (
	defaultTimeout = 2 * time.Second
	defaultWindow  = 256
)

// Client is a multiplexed connection to a remote exporter. One Client
// carries many proxies and many concurrent calls over a single transport
// connection: every request frame bears a monotonically increasing call
// ID, replies may come back in any order, and a per-connection demux
// goroutine routes each reply to its waiter. Outbound frames funnel
// through a flush coalescer that merges back-to-back requests into one
// transport send. In-flight calls are bounded by a window (SetWindow);
// CallAsync blocks for a free slot, which is the client's backpressure.
//
// The failure semantics the paper complains about are preserved exactly:
// a transport fault or a synchronous call timeout poisons the connection
// (every in-flight call fails, Redial is required), while canceling one
// async call abandons only that call — its late reply, if any, is dropped
// by the demux loop without disturbing the connection.
type Client struct {
	dial func(context.Context) (netsim.FrameConn, error)
	to   netsim.Addr

	mu         sync.Mutex
	timeout    time.Duration
	window     int
	flushBytes int
	flushDelay time.Duration
	ins        Instruments
	raw        netsim.FrameConn // dialed, not yet wrapped in a muxConn
	mc         *muxConn

	// cur mirrors mc and broken mirrors the poison flag lock-free, so the
	// demux/flusher goroutines can poison the client without touching mu
	// (teardown holds mu while waiting for the flusher to exit).
	cur    atomic.Pointer[muxConn]
	broken atomic.Bool
}

// Instruments are the client's optional per-call metrics; zero-value
// fields record nothing. Install with Instrument before the first call —
// the connection snapshots them when it is established.
type Instruments struct {
	// CallLatency observes marshal → reply-decoded round-trip time, µs.
	CallLatency *telemetry.Histogram
	// FrameBytes observes marshaled request-frame sizes.
	FrameBytes *telemetry.Histogram
	// Errors counts failed calls (transport faults, timeouts, remote
	// errors alike).
	Errors *telemetry.Counter
	// InFlight gauges calls issued but not yet resolved.
	InFlight *telemetry.Gauge
	// WriteBatch observes frames-per-transport-send at the coalescer.
	WriteBatch *telemetry.Histogram
}

// Dial connects to the exporter at `to` on the simulated network,
// originating from endpoint `from`.
func Dial(n *netsim.Network, from, to netsim.Addr) (*Client, error) {
	return DialContext(context.Background(), n, from, to)
}

// DialContext is Dial honoring ctx for cancellation and deadline.
func DialContext(ctx context.Context, n *netsim.Network, from, to netsim.Addr) (*Client, error) {
	dial := func(ctx context.Context) (netsim.FrameConn, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return n.Dial(from, to)
	}
	return dialWith(ctx, dial, to)
}

// DialTCP connects to a TCP exporter at addr ("host:port").
func DialTCP(addr string) (*Client, error) {
	return DialTCPContext(context.Background(), addr)
}

// DialTCPContext is DialTCP honoring ctx: a dial toward a dead or
// partitioned peer fails at ctx's deadline instead of blocking for the
// kernel's connect timeout.
func DialTCPContext(ctx context.Context, addr string) (*Client, error) {
	dial := func(ctx context.Context) (netsim.FrameConn, error) {
		return netsim.DialTCPContext(ctx, addr)
	}
	return dialWith(ctx, dial, netsim.Addr(addr))
}

func dialWith(ctx context.Context, dial func(context.Context) (netsim.FrameConn, error), to netsim.Addr) (*Client, error) {
	conn, err := dial(ctx)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrRPCFailure, to, err)
	}
	return &Client{
		dial:    dial,
		to:      to,
		timeout: defaultTimeout,
		window:  defaultWindow,
		raw:     conn,
	}, nil
}

// SetTimeout configures the synchronous per-call reply deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetWindow bounds the number of in-flight calls on the connection; when
// the window is full, CallAsync blocks until a slot frees (backpressure).
// Takes effect on the next connection establishment (first call after
// Dial or Redial).
func (c *Client) SetWindow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > 0 {
		c.window = n
	}
}

// SetFlush tunes the write coalescer: maxBytes bounds one transport send
// (0 = default), delay lingers that long before flushing so a batch can
// form (0 = natural batching with an inline fast path for lone callers).
// Takes effect on the next connection establishment.
func (c *Client) SetFlush(maxBytes int, delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushBytes = maxBytes
	c.flushDelay = delay
}

// Instrument installs per-call metrics on this client. The connection
// snapshots the set when established, so install before the first call.
func (c *Client) Instrument(ins Instruments) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ins = ins
}

// Broken reports whether the transport is poisoned.
func (c *Client) Broken() bool { return c.broken.Load() }

// Redial replaces a broken transport with a fresh connection. The OFTT
// engine calls this after a switchover, when the exporter has moved or
// restarted — DCOM itself offers no such recovery (Section 3.3).
func (c *Client) Redial() error { return c.RedialContext(context.Background()) }

// RedialContext is Redial honoring ctx for cancellation and deadline.
func (c *Client) RedialContext(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.teardownLocked()
	conn, err := c.dial(ctx)
	if err != nil {
		c.broken.Store(true)
		return fmt.Errorf("%w: redial %s: %v", ErrRPCFailure, c.to, err)
	}
	c.raw = conn
	c.broken.Store(false)
	return nil
}

// Close tears the connection down; in-flight calls fail with ErrRPCFailure.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.teardownLocked()
	c.broken.Store(true)
}

// teardownLocked dismantles the live connection (if any): in-flight calls
// fail immediately, the demux loop unblocks via conn close, and the
// coalescer is stopped without draining (the peers of those frames are
// failing anyway). Caller holds c.mu.
func (c *Client) teardownLocked() {
	if c.raw != nil {
		_ = c.raw.Close()
		c.raw = nil
	}
	if mc := c.mc; mc != nil {
		c.mc = nil
		c.cur.Store(nil)
		_ = mc.conn.Close()
		mc.fail(fmt.Errorf("%w: connection closed", ErrRPCFailure))
		mc.wr.close(false)
	}
}

// markBroken poisons the client if mc is still its live connection. Called
// from demux/flusher goroutines; lock-free on purpose — teardownLocked
// waits on the flusher while holding c.mu.
func (c *Client) markBroken(mc *muxConn) {
	if c.cur.Load() == mc {
		c.broken.Store(true)
	}
}

// ensureMuxLocked wraps the dialed transport into the multiplexing
// machinery on first use, so SetWindow/SetFlush/Instrument issued between
// Dial and the first call all apply. Caller holds c.mu.
func (c *Client) ensureMuxLocked() (*muxConn, error) {
	if c.broken.Load() {
		return nil, fmt.Errorf("%w: connection poisoned; Redial required", ErrRPCFailure)
	}
	if c.mc != nil {
		return c.mc, nil
	}
	if c.raw == nil {
		return nil, fmt.Errorf("%w: connection poisoned; Redial required", ErrRPCFailure)
	}
	mc := newMuxConn(c, c.raw)
	c.raw = nil
	c.mc = mc
	c.cur.Store(mc)
	return mc, nil
}

// muxConn is one live multiplexed connection: the demux goroutine routes
// replies by call ID to pending futures, the coalescer batches outbound
// frames, and the slots channel bounds in-flight calls.
type muxConn struct {
	conn netsim.FrameConn
	wr   *coalescer
	ins  Instruments

	slots chan struct{} // one token per in-flight call (window bound)
	down  chan struct{} // closed when the connection fails

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*Future // nil once failed
	err     error
}

func newMuxConn(c *Client, conn netsim.FrameConn) *muxConn {
	mc := &muxConn{
		conn:    conn,
		ins:     c.ins,
		slots:   make(chan struct{}, c.window),
		down:    make(chan struct{}),
		pending: make(map[uint64]*Future),
	}
	onBatch := func(frames int) { mc.ins.WriteBatch.Observe(int64(frames)) }
	onErr := func(err error) {
		mc.fail(fmt.Errorf("%w: send: %v", ErrRPCFailure, err))
		c.markBroken(mc)
	}
	mc.wr = newCoalescer(conn, c.flushBytes, c.flushDelay, onBatch, onErr)
	go mc.demux(c)
	return mc
}

// replySlot pairs a reply decoded zero-copy (UnmarshalShared) with the
// raw frame its byte fields alias. Slots are pooled; on TCP the raw
// buffer doubles as the per-connection read arena.
type replySlot struct {
	raw []byte
	rep reply
}

var replySlotPool = sync.Pool{New: func() any { return new(replySlot) }}

func putReplySlot(s *replySlot) {
	s.rep = reply{}
	replySlotPool.Put(s)
}

// demux is the per-connection reply router: read a frame, decode it
// straight from the read arena, hand it to the future registered under
// its call ID. Replies for unknown IDs (canceled calls) are dropped.
// A read or decode failure poisons the connection.
func (mc *muxConn) demux(c *Client) {
	br, _ := mc.conn.(netsim.BufRecver)
	for {
		slot := replySlotPool.Get().(*replySlot)
		var raw []byte
		var err error
		if br != nil {
			raw, err = br.RecvBuf(slot.raw)
			if err == nil {
				slot.raw = raw
			}
		} else {
			raw, err = mc.conn.Recv()
		}
		if err == nil {
			slot.rep = reply{}
			if derr := ndr.UnmarshalShared(raw, &slot.rep); derr != nil {
				err = fmt.Errorf("corrupt reply: %v", derr)
			} else if br == nil {
				slot.raw = raw // owned fabric frame backing the shared decode
			}
		}
		if err != nil {
			putReplySlot(slot)
			mc.fail(fmt.Errorf("%w: recv: %v", ErrRPCFailure, err))
			c.markBroken(mc)
			return
		}
		mc.deliver(slot)
	}
}

func (mc *muxConn) deliver(slot *replySlot) {
	id := slot.rep.ID
	mc.mu.Lock()
	f := mc.pending[id]
	delete(mc.pending, id)
	mc.mu.Unlock()
	if f == nil || !f.resolved.CompareAndSwap(false, true) {
		putReplySlot(slot) // late reply for a canceled call, or raced a failure
		return
	}
	f.slot = slot
	mc.release()
	close(f.done)
}

// fail poisons the connection once: every pending future resolves with
// err, callers blocked on the window are released, and later starts are
// refused. It never waits for the flusher (it may BE the flusher).
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	pend := mc.pending
	mc.pending = nil
	mc.mu.Unlock()
	close(mc.down)
	for _, f := range pend {
		if f.resolved.CompareAndSwap(false, true) {
			f.err = err
			mc.release()
			close(f.done)
		}
	}
}

func (mc *muxConn) release() {
	<-mc.slots
	mc.ins.InFlight.Add(-1)
}

func (mc *muxConn) deadErr() error {
	mc.mu.Lock()
	err := mc.err
	mc.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("%w: connection closed", ErrRPCFailure)
	}
	return err
}

// encScratch is pooled per-call encode state: args marshaled back-to-back
// into one arena, then the request frame. The coalescer copies the frame
// at enqueue, so the scratch recycles as soon as start returns.
type encScratch struct {
	argBuf  []byte
	argOffs []int
	frame   []byte
}

var encScratchPool = sync.Pool{New: func() any { return new(encScratch) }}

// start issues one call on the connection: encode, take a window slot,
// register under a fresh call ID, enqueue the frame. The returned future
// resolves when the demux loop routes the reply back (or the connection
// fails, or the caller cancels).
func (mc *muxConn) start(oid ObjectID, method string, out []any, args []any) (*Future, error) {
	f := &Future{
		mc:     mc,
		oid:    oid,
		method: method,
		out:    out,
		start:  time.Now(),
		done:   make(chan struct{}),
	}

	// Encode args before taking a window slot so marshal errors do not
	// consume capacity.
	sc := encScratchPool.Get().(*encScratch)
	buf := sc.argBuf[:0]
	offs := append(sc.argOffs[:0], 0)
	for i, a := range args {
		var err error
		buf, err = ndr.MarshalTo(buf, a)
		if err != nil {
			sc.argBuf, sc.argOffs = buf, offs
			encScratchPool.Put(sc)
			mc.ins.Errors.Inc()
			return nil, fmt.Errorf("dcom: marshal arg %d of %s: %w", i, method, err)
		}
		offs = append(offs, len(buf))
	}
	sc.argBuf, sc.argOffs = buf, offs
	req := request{OID: oid, Method: method, Args: make([][]byte, len(args))}
	for i := range args {
		req.Args[i] = buf[offs[i]:offs[i+1]:offs[i+1]]
	}

	// Backpressure: one window slot per in-flight call.
	select {
	case mc.slots <- struct{}{}:
	case <-mc.down:
		encScratchPool.Put(sc)
		mc.ins.Errors.Inc()
		return nil, mc.deadErr()
	}
	mc.ins.InFlight.Add(1)

	mc.mu.Lock()
	if mc.err != nil {
		err := mc.err
		mc.mu.Unlock()
		mc.release()
		encScratchPool.Put(sc)
		mc.ins.Errors.Inc()
		return nil, err
	}
	mc.nextID++
	f.id = mc.nextID
	mc.pending[f.id] = f
	mc.mu.Unlock()

	req.ID = f.id
	frame, err := ndr.MarshalToDeref(sc.frame[:0], &req)
	if err == nil {
		sc.frame = frame
		mc.ins.FrameBytes.Observe(int64(len(frame)))
		if serr := mc.wr.enqueue(frame); serr != nil {
			err = fmt.Errorf("%w: send %s: %v", ErrRPCFailure, method, serr)
		}
	} else {
		err = fmt.Errorf("dcom: marshal request: %w", err)
	}
	encScratchPool.Put(sc)
	if err != nil {
		// Withdraw the registration; the connection's fail() may have
		// raced us here, so resolution is CAS-guarded either way.
		mc.mu.Lock()
		if mc.pending != nil {
			delete(mc.pending, f.id)
		}
		mc.mu.Unlock()
		if f.resolved.CompareAndSwap(false, true) {
			f.err = err
			mc.release()
			close(f.done)
		}
		mc.ins.Errors.Inc()
		return nil, err
	}
	return f, nil
}

// Future is one in-flight call. It resolves exactly once: with the reply,
// with the connection's failure, or by cancellation in Wait.
type Future struct {
	mc     *muxConn
	oid    ObjectID
	method string
	out    []any
	id     uint64
	start  time.Time

	resolved atomic.Bool
	done     chan struct{}
	once     sync.Once
	slot     *replySlot
	err      error
}

// Done returns a channel closed when the call has resolved; Wait then
// returns without blocking.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the call resolves or ctx is done, then returns the
// call's error exactly as a synchronous Call would (nil on success, with
// results decoded into the out pointers given at CallAsync).
//
// If ctx expires first, only THIS call is abandoned: it fails with
// ErrCallCanceled, its window slot frees, and its reply — should one
// arrive later — is dropped by the demux loop. The connection stays
// healthy; this is the cancellation story the synchronous timeout (which
// must poison, the call's fate being unknown) cannot offer.
func (f *Future) Wait(ctx context.Context) error {
	select {
	case <-f.done:
		return f.finish()
	case <-ctx.Done():
	}
	f.mc.mu.Lock()
	if f.mc.pending != nil {
		delete(f.mc.pending, f.id)
	}
	f.mc.mu.Unlock()
	if f.resolved.CompareAndSwap(false, true) {
		f.err = fmt.Errorf("%w: %s: %v", ErrCallCanceled, f.method, ctx.Err())
		f.mc.release()
		close(f.done)
		return f.finish()
	}
	<-f.done // resolution raced the cancel; take the real outcome
	return f.finish()
}

// finish decodes the reply (once) into the caller's out pointers and
// records instruments. Safe to call repeatedly; later calls return the
// settled error.
func (f *Future) finish() error {
	f.once.Do(func() {
		if f.slot != nil {
			f.err = decodeReply(&f.slot.rep, f.oid, f.method, f.out)
			putReplySlot(f.slot)
			f.slot = nil
		}
		f.mc.ins.CallLatency.ObserveDuration(time.Since(f.start))
		if f.err != nil {
			f.mc.ins.Errors.Inc()
		}
	})
	return f.err
}

// decodeReply maps a wire reply onto the caller's out pointers, with the
// same fault taxonomy the transport has always had.
func decodeReply(rep *reply, oid ObjectID, method string, out []any) error {
	switch rep.Fault {
	case "":
	case "noobject":
		return fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	case "nomethod":
		return fmt.Errorf("%w: %s", ErrNoSuchMethod, method)
	default:
		return fmt.Errorf("dcom: bad call to %s", method)
	}
	if rep.Err != "" {
		return &RemoteError{Method: method, Msg: rep.Err}
	}
	if len(out) > len(rep.Results) {
		return fmt.Errorf("dcom: %s returned %d results, caller wants %d",
			method, len(rep.Results), len(out))
	}
	for i, dst := range out {
		if err := ndr.Unmarshal(rep.Results[i], dst); err != nil {
			return fmt.Errorf("dcom: unmarshal result %d of %s: %w", i, method, err)
		}
	}
	return nil
}

// Proxy is a typed handle to one remote object.
type Proxy struct {
	client *Client
	oid    ObjectID
}

// Object returns a proxy for the given OID.
func (c *Client) Object(oid ObjectID) *Proxy {
	return &Proxy{client: c, oid: oid}
}

// OID returns the proxied object's identity.
func (p *Proxy) OID() ObjectID { return p.oid }

// Call invokes a remote method synchronously. args are marshaled
// positionally; each element of out must be a pointer that receives the
// corresponding result (excluding a trailing error, which is returned as
// *RemoteError). If the reply misses the client's timeout the connection
// is poisoned (ErrCallTimeout), exactly as before multiplexing.
func (p *Proxy) Call(method string, out []any, args ...any) error {
	return p.client.call(p.oid, method, out, args)
}

// CallAsync begins a remote method invocation and returns a Future that
// resolves with the reply. out is decoded when the future is waited on.
// Many async calls share the connection concurrently (pipelining); the
// in-flight window bounds how many, blocking CallAsync when full.
func (p *Proxy) CallAsync(method string, out []any, args ...any) (*Future, error) {
	return p.client.callAsync(p.oid, method, out, args)
}

func (c *Client) callAsync(oid ObjectID, method string, out []any, args []any) (*Future, error) {
	c.mu.Lock()
	mc, err := c.ensureMuxLocked()
	if err != nil {
		ins := c.ins
		c.mu.Unlock()
		ins.Errors.Inc()
		return nil, err
	}
	c.mu.Unlock()
	return mc.start(oid, method, out, args)
}

// call is the synchronous path: CallAsync plus a bounded wait. A timeout
// poisons the whole connection — with the reply outstanding the call's
// fate is unknown, and the paper's DCOM offered no finer recovery.
func (c *Client) call(oid ObjectID, method string, out []any, args []any) error {
	c.mu.Lock()
	timeout := c.timeout
	mc, err := c.ensureMuxLocked()
	if err != nil {
		ins := c.ins
		c.mu.Unlock()
		ins.Errors.Inc()
		return err
	}
	c.mu.Unlock()

	f, err := mc.start(oid, method, out, args)
	if err != nil {
		return err
	}
	timer := time.NewTimer(timeout)
	select {
	case <-f.done:
		timer.Stop()
		return f.finish()
	case <-timer.C:
	}
	terr := fmt.Errorf("%w: %s", ErrCallTimeout, method)
	mc.fail(terr)
	c.markBroken(mc)
	<-f.done // fail (or a racing reply) resolves the future
	_ = f.finish()
	return terr
}

package dcom

// BenchmarkDCOMConcurrent is the multiplexing speed grid: clients ×
// pipeline depth × payload, over the simulated fabric (1 ms link latency,
// where pipelining is the whole game) and real TCP loopback. impl=mux is
// the multiplexed client — all c callers share ONE connection, each
// keeping d async calls in flight. impl=oneconn is the pre-mux baseline:
// one connection per caller, one synchronous call at a time (its d cell
// label is matched for diffing but depth cannot apply). cmd/oftt-benchdiff
// turns the paired cells into BENCH_DCOM.json via `make bench-dcom`.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
	"repro/internal/netsim"
)

// benchSvc echoes a byte payload, exercising both marshal directions and
// the client's zero-copy reply decode.
type benchSvc struct{}

func (benchSvc) EchoBytes(p []byte) []byte { return p }

func BenchmarkDCOMConcurrent(b *testing.B) {
	for _, netKind := range []string{"sim", "tcp"} {
		for _, impl := range []string{"mux", "oneconn"} {
			for _, clients := range []int{1, 8, 64} {
				for _, depth := range []int{1, 8} {
					for _, pay := range []int{64, 1024} {
						name := fmt.Sprintf("impl=%s/net=%s/c=%d/d=%d/pay=%d",
							impl, netKind, clients, depth, pay)
						b.Run(name, func(b *testing.B) {
							benchCell(b, impl, netKind, clients, depth, pay)
						})
					}
				}
			}
		}
	}
}

func benchCell(b *testing.B, impl, netKind string, clients, depth, pay int) {
	oid := com.NewGUID()
	var n *netsim.Network
	var exp *Exporter
	var err error
	switch netKind {
	case "sim":
		n = netsim.New("eth0", 1)
		n.SetLatency(time.Millisecond, time.Millisecond)
		exp, err = NewExporter(n, "srv:rpc")
	case "tcp":
		exp, err = NewExporterTCP("127.0.0.1:0")
	}
	if err != nil {
		b.Fatal(err)
	}
	defer exp.Close()
	if err := exp.Export(oid, benchSvc{}); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, pay)
	for i := range payload {
		payload[i] = byte(i)
	}

	switch impl {
	case "mux":
		benchMux(b, n, exp, oid, clients, depth, payload)
	case "oneconn":
		benchOneConn(b, n, exp, oid, clients, payload)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "calls/s")
}

// benchMux: c goroutines share one multiplexed client, each holding a
// window of d async calls open.
func benchMux(b *testing.B, n *netsim.Network, exp *Exporter, oid ObjectID, clients, depth int, payload []byte) {
	var cli *Client
	var err error
	if n != nil {
		cli, err = Dial(n, "cli:rpc", "srv:rpc")
	} else {
		cli, err = DialTCP(string(exp.Addr()))
	}
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	cli.SetWindow(clients * depth)
	p := cli.Object(oid)

	ctx := context.Background()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		mine := b.N / clients
		if g < b.N%clients {
			mine++
		}
		if mine == 0 {
			continue
		}
		wg.Add(1)
		go func(mine int) {
			defer wg.Done()
			outs := make([][]byte, depth)
			futs := make([]*Future, 0, depth)
			for i := 0; i < mine; i++ {
				slot := i % depth
				if len(futs) == depth {
					if err := futs[0].Wait(ctx); err != nil {
						b.Error(err)
						return
					}
					futs = futs[1:]
				}
				f, err := p.CallAsync("EchoBytes", []any{&outs[slot]}, payload)
				if err != nil {
					b.Error(err)
					return
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if err := f.Wait(ctx); err != nil {
					b.Error(err)
					return
				}
			}
		}(mine)
	}
	wg.Wait()
}

// benchOneConn: the baseline shape — every goroutine its own connection,
// strictly synchronous calls.
func benchOneConn(b *testing.B, n *netsim.Network, exp *Exporter, oid ObjectID, clients int, payload []byte) {
	clis := make([]*refClient, clients)
	for g := range clis {
		var err error
		if n != nil {
			clis[g], err = refDial(n, netsim.Addr(fmt.Sprintf("cli%d:rpc", g)), "srv:rpc")
		} else {
			clis[g], err = refDialTCP(string(exp.Addr()))
		}
		if err != nil {
			b.Fatal(err)
		}
		defer clis[g].Close()
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		mine := b.N / clients
		if g < b.N%clients {
			mine++
		}
		if mine == 0 {
			continue
		}
		wg.Add(1)
		go func(cli *refClient, mine int) {
			defer wg.Done()
			var out []byte
			for i := 0; i < mine; i++ {
				if err := cli.call(oid, "EchoBytes", []any{&out}, []any{payload}); err != nil {
					b.Error(err)
					return
				}
			}
		}(clis[g], mine)
	}
	wg.Wait()
}

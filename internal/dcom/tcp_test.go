package dcom

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/com"
)

func setupTCP(t *testing.T) (*Exporter, *Client, ObjectID, *calcService) {
	t.Helper()
	exp, err := NewExporterTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(exp.Close)
	svc := &calcService{}
	oid := com.NewGUID()
	if err := exp.Export(oid, svc); err != nil {
		t.Fatal(err)
	}
	cli, err := DialTCP(string(exp.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return exp, cli, oid, svc
}

func TestTCPBasicCall(t *testing.T) {
	_, cli, oid, svc := setupTCP(t)
	p := cli.Object(oid)
	var sum int64
	if err := p.Call("Add", []any{&sum}, int64(40), int64(2)); err != nil {
		t.Fatal(err)
	}
	if sum != 42 || svc.calls != 1 {
		t.Fatalf("sum=%d calls=%d", sum, svc.calls)
	}
}

func TestTCPRemoteError(t *testing.T) {
	_, cli, oid, _ := setupTCP(t)
	var out float64
	err := cli.Object(oid).Call("Divide", []any{&out}, 1.0, 0.0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("got %v", err)
	}
}

func TestTCPComplexTypes(t *testing.T) {
	_, cli, oid, _ := setupTCP(t)
	var greeting string
	var total int64
	err := cli.Object(oid).Call("Describe", []any{&greeting, &total},
		"tcp", map[string]int64{"x": 5, "y": 7})
	if err != nil {
		t.Fatal(err)
	}
	if greeting != "hello tcp" || total != 12 {
		t.Fatalf("got %q %d", greeting, total)
	}
}

func TestTCPCalleeDeathAndRedial(t *testing.T) {
	exp, cli, oid, _ := setupTCP(t)
	p := cli.Object(oid)
	var sum int64
	if err := p.Call("Add", []any{&sum}, int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}

	addr := string(exp.Addr())
	exp.Close() // the callee process dies
	err := p.Call("Add", []any{&sum}, int64(1), int64(1))
	if !errors.Is(err, ErrRPCFailure) && !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("dead callee: %v", err)
	}
	if !cli.Broken() {
		t.Fatal("client should be poisoned")
	}

	// Restart on the same port and redial.
	exp2, err := NewExporterTCP(addr)
	if err != nil {
		t.Skipf("port %s not immediately rebindable: %v", addr, err)
	}
	defer exp2.Close()
	if err := exp2.Export(oid, &calcService{}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Redial(); err != nil {
		t.Fatal(err)
	}
	if err := p.Call("Add", []any{&sum}, int64(20), int64(22)); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestTCPCallTimeout(t *testing.T) {
	// A TCP listener that accepts and stalls.
	exp, err := NewExporterTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// No object exported is still answered (noobject), so instead stall by
	// dialing a raw listener that never replies.
	exp.Close()

	lst, err := rawStallListener()
	if err != nil {
		t.Fatal(err)
	}
	defer lst.close()

	cli, err := DialTCP(lst.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(50 * time.Millisecond)
	err = cli.Object(com.NewGUID()).Call("Add", nil, int64(1), int64(2))
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("got %v", err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	exp, _, oid, svc := setupTCP(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := DialTCP(string(exp.Addr()))
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			p := cli.Object(oid)
			for j := 0; j < 25; j++ {
				var sum int64
				if err := p.Call("Add", []any{&sum}, int64(j), int64(1)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if svc.calls != 4*25 {
		t.Fatalf("calls = %d", svc.calls)
	}
}

// rawStall is a TCP listener that accepts connections and never replies.
type rawStall struct {
	addr  string
	close func()
}

func rawStallListener() (*rawStall, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				<-done
				c.Close()
			}()
		}
	}()
	return &rawStall{
		addr:  l.Addr().String(),
		close: func() { close(done); l.Close() },
	}, nil
}

package com

import (
	"errors"
	"sync"
)

// Apartment serializes calls into single-threaded-apartment (STA) objects.
// COM's STA pumps a Windows message loop; the analog pumps a channel of
// closures through one goroutine, giving the same guarantee: at most one
// call executes inside the apartment at a time, in arrival order.
type Apartment struct {
	calls   chan func()
	stop    chan struct{}
	done    chan struct{}
	stopped sync.Once
}

// NewApartment starts the apartment's message pump.
func NewApartment() *Apartment {
	a := &Apartment{
		calls: make(chan func()),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go a.pump()
	return a
}

func (a *Apartment) pump() {
	defer close(a.done)
	for {
		select {
		case fn := <-a.calls:
			fn()
		case <-a.stop:
			// Drain anything already queued so callers do not hang.
			for {
				select {
				case fn := <-a.calls:
					fn()
				default:
					return
				}
			}
		}
	}
}

// Do runs fn inside the apartment and waits for it to finish.
func (a *Apartment) Do(fn func()) error {
	doneCh := make(chan struct{})
	wrapped := func() {
		defer close(doneCh)
		fn()
	}
	select {
	case a.calls <- wrapped:
		<-doneCh
		return nil
	case <-a.stop:
		return ErrApartmentStopped
	}
}

// Call runs fn inside the apartment and returns its error.
func (a *Apartment) Call(fn func() error) error {
	var callErr error
	if err := a.Do(func() { callErr = fn() }); err != nil {
		return err
	}
	return callErr
}

// Post runs fn inside the apartment without waiting (PostMessage analog).
// It returns ErrApartmentStopped if the apartment has shut down.
func (a *Apartment) Post(fn func()) error {
	select {
	case a.calls <- fn:
		return nil
	case <-a.stop:
		return ErrApartmentStopped
	}
}

// Shutdown stops the pump and waits for it to exit. Idempotent.
func (a *Apartment) Shutdown() {
	a.stopped.Do(func() { close(a.stop) })
	<-a.done
}

// ErrCallRejected is returned by guarded call sites when an object refuses
// a call (e.g. during teardown).
var ErrCallRejected = errors.New("com: call rejected")

package com

import (
	"fmt"
	"sort"
	"sync"
)

// ClassFactory creates instances of one coclass (IClassFactory analog).
type ClassFactory interface {
	// CreateInstance constructs a new object and returns its IUnknown.
	CreateInstance() (Unknown, error)
}

// FactoryFunc adapts a constructor function to ClassFactory.
type FactoryFunc func() (Unknown, error)

// CreateInstance implements ClassFactory.
func (f FactoryFunc) CreateInstance() (Unknown, error) { return f() }

// classEntry is one registered coclass.
type classEntry struct {
	clsid   CLSID
	progID  string
	factory ClassFactory
}

// Registry is the per-node class registry — the analog of
// HKEY_CLASSES_ROOT\CLSID. Each simulated node owns one Registry, so class
// registration is per-machine just as on NT.
type Registry struct {
	mu      sync.RWMutex
	byCLSID map[CLSID]*classEntry
	byProg  map[string]*classEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byCLSID: make(map[CLSID]*classEntry),
		byProg:  make(map[string]*classEntry),
	}
}

// RegisterClass associates clsid (and an optional human-readable ProgID)
// with a factory. Re-registering a CLSID replaces the factory, matching
// regsvr32 semantics.
func (r *Registry) RegisterClass(clsid CLSID, progID string, f ClassFactory) error {
	if clsid.IsNil() {
		return fmt.Errorf("com: cannot register nil CLSID")
	}
	if f == nil {
		return fmt.Errorf("com: nil factory for %s", clsid)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := &classEntry{clsid: clsid, progID: progID, factory: f}
	r.byCLSID[clsid] = e
	if progID != "" {
		r.byProg[progID] = e
	}
	return nil
}

// UnregisterClass removes a coclass.
func (r *Registry) UnregisterClass(clsid CLSID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byCLSID[clsid]; ok {
		delete(r.byCLSID, clsid)
		if e.progID != "" {
			delete(r.byProg, e.progID)
		}
	}
}

// CLSIDFromProgID resolves a ProgID ("OFTT.Engine.1") to its CLSID.
func (r *Registry) CLSIDFromProgID(progID string) (CLSID, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byProg[progID]
	if !ok {
		return NilGUID, fmt.Errorf("%w: progID %q", ErrClassNotRegistered, progID)
	}
	return e.clsid, nil
}

// CreateInstance instantiates the coclass and immediately queries the
// requested interface — CoCreateInstance. The returned Unknown carries one
// reference owned by the caller.
func (r *Registry) CreateInstance(clsid CLSID, iid IID) (Unknown, any, error) {
	r.mu.RLock()
	e, ok := r.byCLSID[clsid]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrClassNotRegistered, clsid)
	}
	obj, err := e.factory.CreateInstance()
	if err != nil {
		return nil, nil, fmt.Errorf("com: create %s: %w", clsid, err)
	}
	impl, err := obj.QueryInterface(iid)
	if err != nil {
		obj.Release()
		return nil, nil, err
	}
	return obj, impl, nil
}

// ProgIDs lists registered ProgIDs, sorted (for the system monitor).
func (r *Registry) ProgIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byProg))
	for id := range r.byProg {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of registered coclasses.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byCLSID)
}

package com

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Unknown is the IUnknown contract: interface negotiation plus reference
// counting. Every COM-style object in the toolkit implements it.
type Unknown interface {
	// QueryInterface returns the object's implementation of the interface
	// identified by iid, or ErrNoInterface.
	QueryInterface(iid IID) (any, error)
	// AddRef increments the reference count and returns the new count.
	AddRef() int32
	// Release decrements the reference count, running the object's
	// finalizer when it reaches zero, and returns the new count.
	Release() int32
}

// Object is an embeddable IUnknown implementation. A concrete class embeds
// *Object (created with NewObject) and supplies its interface table.
type Object struct {
	refs      atomic.Int32
	mu        sync.RWMutex
	ifaces    map[IID]any
	finalizer func()
	released  atomic.Bool
}

var _ Unknown = (*Object)(nil)

// NewObject returns an Object with one outstanding reference, exposing the
// given interface table. IIDUnknown is always answerable.
func NewObject(ifaces map[IID]any) *Object {
	o := &Object{ifaces: make(map[IID]any, len(ifaces)+1)}
	for iid, impl := range ifaces {
		o.ifaces[iid] = impl
	}
	o.refs.Store(1)
	return o
}

// SetFinalizer registers fn to run exactly once when the reference count
// reaches zero.
func (o *Object) SetFinalizer(fn func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finalizer = fn
}

// Expose adds (or replaces) an interface in the object's table. It exists so
// a concrete class can register interfaces that need a pointer back to the
// fully-constructed object.
func (o *Object) Expose(iid IID, impl any) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ifaces[iid] = impl
}

// QueryInterface implements Unknown.
func (o *Object) QueryInterface(iid IID) (any, error) {
	if o.released.Load() {
		return nil, ErrObjectReleased
	}
	if iid == IIDUnknown {
		return Unknown(o), nil
	}
	o.mu.RLock()
	impl, ok := o.ifaces[iid]
	o.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoInterface, iid)
	}
	return impl, nil
}

// AddRef implements Unknown.
func (o *Object) AddRef() int32 {
	return o.refs.Add(1)
}

// Release implements Unknown.
func (o *Object) Release() int32 {
	n := o.refs.Add(-1)
	if n == 0 && o.released.CompareAndSwap(false, true) {
		o.mu.RLock()
		fn := o.finalizer
		o.mu.RUnlock()
		if fn != nil {
			fn()
		}
	}
	return n
}

// Refs returns the current reference count (for tests and the monitor).
func (o *Object) Refs() int32 { return o.refs.Load() }

// Released reports whether the object's count has hit zero.
func (o *Object) Released() bool { return o.released.Load() }

// QueryAs resolves iid on any Unknown and type-asserts the result to T.
func QueryAs[T any](u Unknown, iid IID) (T, error) {
	var zero T
	raw, err := u.QueryInterface(iid)
	if err != nil {
		return zero, err
	}
	typed, ok := raw.(T)
	if !ok {
		return zero, fmt.Errorf("%w: %s resolves to %T, not the requested Go type",
			ErrNoInterface, iid, raw)
	}
	return typed, nil
}

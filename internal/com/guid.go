// Package com implements the Component Object Model contract the OFTT
// toolkit is built on: GUID-identified interfaces, IUnknown-style interface
// negotiation and reference counting, class factories registered in a
// per-machine registry, and apartment-style call serialization.
//
// The paper's toolkit is "built on top of the Microsoft COM component
// architecture" (Section 2.2); every OFTT component — engine, FTIM, message
// diverter, system monitor — is a COM object. This package provides the same
// contract in pure Go so those components compose identically.
package com

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
)

// GUID is a 128-bit globally unique identifier, used for both interface IDs
// (IIDs) and class IDs (CLSIDs), exactly as in COM.
type GUID [16]byte

// NilGUID is the all-zero GUID.
var NilGUID GUID

// NewGUID returns a fresh random GUID (the moral equivalent of CoCreateGuid).
func NewGUID() GUID {
	var g GUID
	if _, err := rand.Read(g[:]); err != nil {
		// crypto/rand failure is unrecoverable program-environment breakage.
		panic(fmt.Sprintf("com: guid entropy: %v", err))
	}
	// Mark as RFC-4122 version 4 / variant 1 for well-formedness.
	g[6] = (g[6] & 0x0f) | 0x40
	g[8] = (g[8] & 0x3f) | 0x80
	return g
}

// ParseGUID parses the canonical 8-4-4-4-12 text form, with or without
// surrounding braces (COM tooling prints both).
func ParseGUID(s string) (GUID, error) {
	if len(s) == 38 && s[0] == '{' && s[37] == '}' {
		s = s[1:37]
	}
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return NilGUID, fmt.Errorf("com: malformed GUID %q", s)
	}
	hexOnly := s[0:8] + s[9:13] + s[14:18] + s[19:23] + s[24:36]
	raw, err := hex.DecodeString(hexOnly)
	if err != nil {
		return NilGUID, fmt.Errorf("com: malformed GUID %q: %w", s, err)
	}
	var g GUID
	copy(g[:], raw)
	return g, nil
}

// MustParseGUID is ParseGUID for compile-time-constant GUID literals.
func MustParseGUID(s string) GUID {
	g, err := ParseGUID(s)
	if err != nil {
		panic(err)
	}
	return g
}

// String renders the canonical braced form, matching regedit output.
func (g GUID) String() string {
	return fmt.Sprintf("{%08x-%04x-%04x-%04x-%012x}",
		g[0:4], g[4:6], g[6:8], g[8:10], g[10:16])
}

// IsNil reports whether g is the zero GUID.
func (g GUID) IsNil() bool { return g == NilGUID }

// IID identifies an interface; CLSID identifies a concrete class.
type (
	IID   = GUID
	CLSID = GUID
)

// Well-known OFTT interface and class IDs. In the original system these
// would live in the NT registry; here they are package constants so every
// component agrees on them.
var (
	IIDUnknown        = MustParseGUID("{00000000-0000-0000-c000-000000000046}")
	IIDClassFactory   = MustParseGUID("{00000001-0000-0000-c000-000000000046}")
	IIDOFTTEngine     = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f01}")
	IIDOFTTFtim       = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f02}")
	IIDOPCServer      = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f03}")
	IIDOPCGroup       = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f04}")
	IIDMessageQueue   = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f05}")
	IIDSystemMonitor  = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f06}")
	IIDWatchdog       = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f07}")
	IIDCheckpointSink = MustParseGUID("{8a1d2f00-1111-4000-8000-0f0f0f0f0f08}")
)

// Canonical HRESULT-flavored errors.
var (
	// ErrNoInterface is COM's E_NOINTERFACE: the object does not expose the
	// requested interface.
	ErrNoInterface = errors.New("com: E_NOINTERFACE")

	// ErrClassNotRegistered is REGDB_E_CLASSNOTREG.
	ErrClassNotRegistered = errors.New("com: REGDB_E_CLASSNOTREG")

	// ErrObjectReleased indicates a call through a fully released object.
	ErrObjectReleased = errors.New("com: object has been released")

	// ErrApartmentStopped indicates a call into a stopped apartment.
	ErrApartmentStopped = errors.New("com: apartment stopped")
)

package com

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestGUIDRoundTrip(t *testing.T) {
	g := NewGUID()
	parsed, err := ParseGUID(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != g {
		t.Fatalf("round trip: got %s, want %s", parsed, g)
	}
}

func TestGUIDParseUnbraced(t *testing.T) {
	g := NewGUID()
	s := strings.Trim(g.String(), "{}")
	parsed, err := ParseGUID(s)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != g {
		t.Fatalf("unbraced round trip: got %s, want %s", parsed, g)
	}
}

func TestGUIDParseErrors(t *testing.T) {
	bad := []string{
		"",
		"not-a-guid",
		"{8a1d2f00-1111-4000-8000-0f0f0f0f0f0}",   // too short
		"8a1d2f00x1111-4000-8000-0f0f0f0f0f01",    // wrong separator
		"{8a1d2f00-1111-4000-8000-0f0f0f0f0zzz}",  // non-hex
		"{8a1d2f00-1111-4000-8000-0f0f0f0f0f01",   // unbalanced brace
		"8a1d2f00-1111-4000-8000-0f0f0f0f0f0100f", // too long
	}
	for _, s := range bad {
		if _, err := ParseGUID(s); err == nil {
			t.Errorf("ParseGUID(%q) unexpectedly succeeded", s)
		}
	}
}

func TestGUIDUniqueness(t *testing.T) {
	seen := make(map[GUID]bool, 1000)
	for i := 0; i < 1000; i++ {
		g := NewGUID()
		if seen[g] {
			t.Fatalf("duplicate GUID %s", g)
		}
		seen[g] = true
	}
}

// Property: any 16 bytes survive a String/Parse cycle.
func TestQuickGUIDStringParse(t *testing.T) {
	f := func(raw [16]byte) bool {
		g := GUID(raw)
		parsed, err := ParseGUID(g.String())
		return err == nil && parsed == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

type pinger interface{ Ping() string }

type pingImpl struct{ id string }

func (p *pingImpl) Ping() string { return "pong:" + p.id }

func newTestObject(id string) (*Object, *pingImpl) {
	impl := &pingImpl{id: id}
	obj := NewObject(map[IID]any{IIDOFTTEngine: pinger(impl)})
	return obj, impl
}

func TestQueryInterface(t *testing.T) {
	obj, _ := newTestObject("a")
	raw, err := obj.QueryInterface(IIDOFTTEngine)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := raw.(pinger)
	if !ok {
		t.Fatalf("got %T, want pinger", raw)
	}
	if got := p.Ping(); got != "pong:a" {
		t.Fatalf("Ping() = %q", got)
	}
}

func TestQueryInterfaceUnknown(t *testing.T) {
	obj, _ := newTestObject("a")
	raw, err := obj.QueryInterface(IIDUnknown)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.(Unknown); !ok {
		t.Fatalf("IIDUnknown resolved to %T", raw)
	}
}

func TestQueryInterfaceMissing(t *testing.T) {
	obj, _ := newTestObject("a")
	if _, err := obj.QueryInterface(IIDOPCServer); !errors.Is(err, ErrNoInterface) {
		t.Fatalf("got %v, want ErrNoInterface", err)
	}
}

func TestQueryAs(t *testing.T) {
	obj, _ := newTestObject("b")
	p, err := QueryAs[pinger](obj, IIDOFTTEngine)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ping() != "pong:b" {
		t.Fatal("wrong implementation")
	}
	if _, err := QueryAs[Unknown](obj, IIDOFTTEngine); err == nil {
		t.Fatal("expected Go-type mismatch error")
	}
}

func TestRefCountingFinalizer(t *testing.T) {
	obj, _ := newTestObject("c")
	finalized := 0
	obj.SetFinalizer(func() { finalized++ })

	if n := obj.AddRef(); n != 2 {
		t.Fatalf("AddRef = %d, want 2", n)
	}
	if n := obj.Release(); n != 1 {
		t.Fatalf("Release = %d, want 1", n)
	}
	if finalized != 0 {
		t.Fatal("finalizer ran early")
	}
	if n := obj.Release(); n != 0 {
		t.Fatalf("Release = %d, want 0", n)
	}
	if finalized != 1 {
		t.Fatalf("finalizer ran %d times, want 1", finalized)
	}
	if _, err := obj.QueryInterface(IIDOFTTEngine); !errors.Is(err, ErrObjectReleased) {
		t.Fatalf("post-release QI: got %v", err)
	}
}

func TestConcurrentRefCounting(t *testing.T) {
	obj, _ := newTestObject("d")
	var finalized sync.Once
	ran := make(chan struct{})
	obj.SetFinalizer(func() { finalized.Do(func() { close(ran) }) })

	const workers = 32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				obj.AddRef()
				obj.Release()
			}
		}()
	}
	wg.Wait()
	if obj.Refs() != 1 {
		t.Fatalf("refs = %d, want 1", obj.Refs())
	}
	obj.Release()
	<-ran
}

func TestRegistryCreateInstance(t *testing.T) {
	reg := NewRegistry()
	clsid := NewGUID()
	created := 0
	err := reg.RegisterClass(clsid, "Test.Ping.1", FactoryFunc(func() (Unknown, error) {
		created++
		obj, _ := newTestObject("reg")
		return obj, nil
	}))
	if err != nil {
		t.Fatal(err)
	}

	unk, impl, err := reg.CreateInstance(clsid, IIDOFTTEngine)
	if err != nil {
		t.Fatal(err)
	}
	defer unk.Release()
	if created != 1 {
		t.Fatalf("factory ran %d times", created)
	}
	if impl.(pinger).Ping() != "pong:reg" {
		t.Fatal("wrong instance")
	}

	got, err := reg.CLSIDFromProgID("Test.Ping.1")
	if err != nil || got != clsid {
		t.Fatalf("CLSIDFromProgID: %v %v", got, err)
	}
}

func TestRegistryUnknownClass(t *testing.T) {
	reg := NewRegistry()
	if _, _, err := reg.CreateInstance(NewGUID(), IIDUnknown); !errors.Is(err, ErrClassNotRegistered) {
		t.Fatalf("got %v, want ErrClassNotRegistered", err)
	}
	if _, err := reg.CLSIDFromProgID("Nope"); !errors.Is(err, ErrClassNotRegistered) {
		t.Fatalf("got %v, want ErrClassNotRegistered", err)
	}
}

func TestRegistryCreateInstanceBadIID(t *testing.T) {
	reg := NewRegistry()
	clsid := NewGUID()
	_ = reg.RegisterClass(clsid, "", FactoryFunc(func() (Unknown, error) {
		obj, _ := newTestObject("x")
		return obj, nil
	}))
	// Requesting an interface the object lacks must release the instance.
	_, _, err := reg.CreateInstance(clsid, IIDOPCServer)
	if !errors.Is(err, ErrNoInterface) {
		t.Fatalf("got %v, want ErrNoInterface", err)
	}
}

func TestRegistryUnregister(t *testing.T) {
	reg := NewRegistry()
	clsid := NewGUID()
	_ = reg.RegisterClass(clsid, "Gone.Soon", FactoryFunc(func() (Unknown, error) {
		obj, _ := newTestObject("x")
		return obj, nil
	}))
	if reg.Len() != 1 {
		t.Fatal("expected one class")
	}
	reg.UnregisterClass(clsid)
	if reg.Len() != 0 {
		t.Fatal("expected empty registry")
	}
	if _, _, err := reg.CreateInstance(clsid, IIDUnknown); err == nil {
		t.Fatal("expected error after unregister")
	}
}

func TestApartmentSerializesCalls(t *testing.T) {
	a := NewApartment()
	defer a.Shutdown()

	var mu sync.Mutex
	inside := 0
	maxInside := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = a.Do(func() {
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				mu.Unlock()
				mu.Lock()
				inside--
				mu.Unlock()
			})
		}()
	}
	wg.Wait()
	if maxInside != 1 {
		t.Fatalf("apartment admitted %d concurrent calls", maxInside)
	}
}

func TestApartmentCallError(t *testing.T) {
	a := NewApartment()
	defer a.Shutdown()
	sentinel := errors.New("boom")
	if err := a.Call(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("got %v", err)
	}
}

func TestApartmentShutdownRejectsCalls(t *testing.T) {
	a := NewApartment()
	a.Shutdown()
	if err := a.Do(func() {}); !errors.Is(err, ErrApartmentStopped) {
		t.Fatalf("got %v, want ErrApartmentStopped", err)
	}
	if err := a.Post(func() {}); !errors.Is(err, ErrApartmentStopped) {
		t.Fatalf("got %v, want ErrApartmentStopped", err)
	}
	a.Shutdown() // idempotent
}

func TestApartmentPost(t *testing.T) {
	a := NewApartment()
	defer a.Shutdown()
	done := make(chan struct{})
	if err := a.Post(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	<-done
}

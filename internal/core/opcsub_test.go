package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/opc"
)

func newSubDemo(t *testing.T) *OPCSubDeployment {
	t.Helper()
	od, err := NewOPCSubDeployment(OPCSubConfig{
		Config: Config{Seed: 21},
		Items:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = od.Shutdown(context.Background()) })
	if err := waitRoles(od.Deployment, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	return od
}

// feed drives the process server: bumps every pv and the seq sentinel.
func feed(t *testing.T, od *OPCSubDeployment, seq int64) {
	t.Helper()
	batch := []opc.ItemUpdate{
		{Tag: "proc.u0.pv", Value: opc.VR8(float64(seq)), Quality: opc.GoodNonSpecific},
		{Tag: "proc.u1.pv", Value: opc.VR8(float64(seq) * 2), Quality: opc.GoodNonSpecific},
		{Tag: "proc.seq", Value: opc.VI8(seq), Quality: opc.GoodNonSpecific},
	}
	if err := od.ProcServer.Publish(batch); err != nil {
		t.Fatal(err)
	}
}

// TestOPCSubTableSurvivesSwitchover: the subscription table is
// checkpointed state; killing the primary node must leave the backup with
// the same table, and its re-materialized subscriptions must deliver new
// process data.
func TestOPCSubTableSurvivesSwitchover(t *testing.T) {
	od := newSubDemo(t)

	app := od.ActiveSubApp()
	if app == nil {
		t.Fatal("no active subscriber host")
	}
	id1, err := app.AddSubscription(OPCSubRecord{
		Name:         "fast",
		UpdateRateMS: 5,
		Tags:         []string{"proc.u0.pv", "proc.u1.pv", "proc.seq"},
	})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := app.AddSubscription(OPCSubRecord{
		Name:         "coarse",
		UpdateRateMS: 5,
		DeadbandPC:   25,
		Tags:         []string{"proc.u1.pv"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatalf("IDs collide: %d", id1)
	}

	// Data flows on the primary.
	var seq int64
	for seq = 1; seq <= 20; seq++ {
		feed(t, od, seq)
		time.Sleep(2 * time.Millisecond)
	}
	if !waitSettled(5*time.Second, func() bool {
		a := od.ActiveSubApp()
		return a != nil && a.Snapshot().LastSeq >= 10
	}) {
		t.Fatalf("no data before failure: %+v", app.Snapshot())
	}

	// Let a checkpoint of the fed state reach the backup, then kill.
	time.Sleep(100 * time.Millisecond)
	primary := od.Primary().Node.Name()
	if err := od.KillNode(primary); err != nil {
		t.Fatal(err)
	}

	// The backup takes over with the table intact...
	if !waitSettled(8*time.Second, func() bool {
		a := od.ActiveSubApp()
		if a == nil || a == app || !a.Live() {
			return false
		}
		return len(a.Snapshot().Subs) == 2
	}) {
		t.Fatal("backup did not restore the subscription table")
	}
	restored := od.ActiveSubApp()
	snap := restored.Snapshot()
	byID := map[int32]OPCSubRecord{}
	for _, rec := range snap.Subs {
		byID[rec.ID] = rec
	}
	if byID[id1].Name != "fast" || len(byID[id1].Tags) != 3 {
		t.Fatalf("record %d mangled: %+v", id1, byID[id1])
	}
	if byID[id2].DeadbandPC != 25 {
		t.Fatalf("record %d lost its deadband: %+v", id2, byID[id2])
	}

	// ...and its re-materialized subscriptions deliver new data.
	before := snap.LastSeq
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := seq
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				s++
				feed(t, od, s)
			}
		}
	}()
	resumed := waitSettled(8*time.Second, func() bool {
		a := od.ActiveSubApp()
		return a != nil && a.Snapshot().LastSeq > before
	})
	close(stop)
	<-done
	if !resumed {
		t.Fatalf("updates did not resume after switchover (LastSeq stuck at %d)", before)
	}
}

// TestOPCSubAddRemoveWhileLive exercises table maintenance on a live
// primary: removing a subscription stops its deliveries and shrinks the
// durable table.
func TestOPCSubAddRemoveWhileLive(t *testing.T) {
	od := newSubDemo(t)
	app := od.ActiveSubApp()
	if app == nil {
		t.Fatal("no active subscriber host")
	}
	id, err := app.AddSubscription(OPCSubRecord{
		Name: "tmp", UpdateRateMS: 5, Tags: []string{"proc.seq"},
	})
	if err != nil {
		t.Fatal(err)
	}
	feed(t, od, 1)
	if !waitSettled(5*time.Second, func() bool { return app.Snapshot().LastSeq == 1 }) {
		t.Fatal("live subscription never delivered")
	}
	app.RemoveSubscription(id)
	if got := len(app.Snapshot().Subs); got != 0 {
		t.Fatalf("table still has %d records", got)
	}
	feed(t, od, 2)
	time.Sleep(50 * time.Millisecond)
	if got := app.Snapshot().LastSeq; got != 1 {
		t.Fatalf("removed subscription still delivering: LastSeq=%d", got)
	}

	if _, err := app.AddSubscription(OPCSubRecord{Name: "no-tags", UpdateRateMS: 5}); err == nil {
		t.Fatal("tagless subscription accepted")
	}
}

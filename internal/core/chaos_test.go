package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/ftim"
)

// chaosApp is a monotonic-counter app used to check state monotonicity
// across arbitrary failure sequences.
type chaosApp struct {
	mu    sync.Mutex
	f     *ftim.ClientFTIM
	state struct{ Seq int64 }
	stop  chan struct{}
	done  chan struct{}
}

func (a *chaosApp) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("seq", &a.state)
}

func (a *chaosApp) Activate(bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				a.f.WithLock(func() { a.state.Seq++ })
			case <-stop:
				return
			}
		}
	}(a.stop, a.done)
}

func (a *chaosApp) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		close(a.stop)
		<-a.done
		a.stop = nil
	}
}
func (a *chaosApp) Stop() { a.Deactivate() }

func (a *chaosApp) seq() int64 {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	if f == nil {
		return -1
	}
	var v int64
	f.WithLock(func() { v = a.state.Seq })
	return v
}

// TestChaosConvergence injects a randomized sequence of failures and
// repairs, checking after each round that the system converges back to a
// live primary and that the counter never regresses past the checkpoint
// window (monotonic progress modulo one checkpoint period of loss).
func TestChaosConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is slow")
	}
	const rounds = 10
	rng := rand.New(rand.NewSource(1234))

	d, err := New(Config{
		Seed:             99,
		CheckpointPeriod: 10 * time.Millisecond,
		Rule:             engine.RecoveryRule{MaxLocalRestarts: 1, Exhausted: engine.ExhaustSwitchover},
		NewApp:           func(string) ReplicatedApp { return &chaosApp{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lowWater := int64(0) // counter must never drop below this
	for round := 0; round < rounds; round++ {
		p := d.Primary()
		if p == nil {
			t.Fatalf("round %d: no primary", round)
		}
		primary := p.Node.Name()

		// Let the system make progress.
		time.Sleep(60 * time.Millisecond)
		app, _ := p.CurrentApp().(*chaosApp)
		if app == nil {
			t.Fatalf("round %d: wrong app type", round)
		}
		before := app.seq()
		if before < lowWater {
			t.Fatalf("round %d: counter regressed %d -> %d", round, lowWater, before)
		}

		// Inject one random failure.
		action := rng.Intn(4)
		var label string
		switch action {
		case 0:
			label = "KillNode"
			if err := d.KillNode(primary); err != nil {
				t.Fatal(err)
			}
		case 1:
			label = "BlueScreen"
			if err := d.BlueScreen(primary); err != nil {
				t.Fatal(err)
			}
		case 2:
			label = "KillApp"
			if err := d.KillApp(primary); err != nil {
				t.Fatal(err)
			}
		case 3:
			label = "KillEngine"
			if err := d.KillEngine(primary); err != nil {
				t.Fatal(err)
			}
		}

		// Converge: a live primary with a running counter.
		if !waitSettled(10*time.Second, func() bool {
			np := d.Primary()
			if np == nil || !np.AppActive() {
				return false
			}
			a, _ := np.CurrentApp().(*chaosApp)
			return a != nil && a.seq() > before
		}) {
			t.Fatalf("round %d (%s on %s): no convergence; roles %v",
				round, label, primary, d.roleSummary())
		}

		// Loss window: one checkpoint period (10ms = 5 ticks) + detection
		// slack. The counter must be near `before`.
		np := d.Primary()
		a, _ := np.CurrentApp().(*chaosApp)
		after := a.seq()
		if after < before-60 {
			t.Fatalf("round %d (%s): lost too much work: %d -> %d",
				round, label, before, after)
		}
		lowWater = after - 60
		if lowWater < 0 {
			lowWater = 0
		}

		// Repair the dead node so the next round has a backup again
		// (skip when the failure was app/engine-local and auto-recovered
		// on the same node).
		if r := d.Replica(primary); r.Node.State() != cluster.NodeUp {
			if err := d.RestartNode(primary); err != nil {
				t.Fatalf("round %d: restart: %v", round, err)
			}
		} else if np.Node.Name() != primary {
			// The old node is up but demoted/killed components remain:
			// for KillEngine its engine is dead, rebuild it.
			if r.Engine.Role() == engine.RoleShutdown ||
				r.EngineProc.State() != cluster.ProcRunning {
				// Power-cycle to get a clean rejoin.
				r.Node.PowerOff()
				if err := d.RestartNode(primary); err != nil {
					t.Fatalf("round %d: engine rebuild: %v", round, err)
				}
			}
		}
		if err := waitRoles(d, 10*time.Second); err != nil {
			t.Fatalf("round %d: pair did not re-form: %v", round, err)
		}
	}
}

// TestRepeatedFailbackCycles ping-pongs the primary role across the pair
// via commanded switchovers, checking role stability and checkpoint flow
// each time.
func TestRepeatedFailbackCycles(t *testing.T) {
	d, apps := testDeployment(t, nil)
	for cycle := 0; cycle < 6; cycle++ {
		p := d.Primary()
		if p == nil {
			t.Fatalf("cycle %d: no primary", cycle)
		}
		app := apps[p.Node.Name()]
		app.bump(1)
		if err := app.f.Save(); err != nil {
			t.Fatalf("cycle %d: save: %v", cycle, err)
		}
		if err := p.Engine.RequestSwitchover(fmt.Sprintf("cycle %d", cycle)); err != nil {
			t.Fatalf("cycle %d: switchover: %v", cycle, err)
		}
		if !waitSettled(5*time.Second, func() bool {
			np := d.Primary()
			return np != nil && np.Node.Name() != p.Node.Name() && d.Backup() != nil
		}) {
			t.Fatalf("cycle %d: roles did not swap: %v", cycle, d.roleSummary())
		}
	}
	// After 6 swaps the accumulated count must have followed the role.
	p := d.Primary()
	app := apps[p.Node.Name()]
	if !waitSettled(2*time.Second, func() bool {
		app.mu.Lock()
		defer app.mu.Unlock()
		return app.State.Count == 6
	}) {
		app.mu.Lock()
		defer app.mu.Unlock()
		t.Fatalf("count after 6 cycles: %d (want 6)", app.State.Count)
	}
}

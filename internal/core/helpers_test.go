package core

import (
	"context"
	"time"
)

// waitRoles bounds WaitForRolesContext with a plain timeout for tests
// that have no caller context to thread through.
func waitRoles(d *Deployment, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.WaitForRolesContext(ctx)
}

// stopNow is a t.Cleanup-shaped blocking teardown.
func stopNow(d *Deployment) func() {
	return func() { _ = d.Shutdown(context.Background()) }
}

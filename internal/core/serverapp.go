package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/ftim"
)

// ServerApp is Figure 2's "OPC Server App (device interface)": the
// stateless device-facing half that runs on each pair node, converting
// sensor and control data into the OPC namespace. Being stateless, it is
// monitored by a server FTIM (no checkpoints) and recovered by local
// restart.
type ServerApp interface {
	// Start brings the server online (device polling, namespace updates).
	Start() error
	// Stop takes it offline.
	Stop()
}

// serverReplica is the per-node server-app assembly.
type serverReplica struct {
	proc *cluster.Process
	f    *ftim.ServerFTIM
	app  ServerApp
}

// buildServerApp constructs the server application on a replica. Called
// from buildReplica when Config.NewServerApp is set, and again by the
// local-restart provision.
func (d *Deployment) buildServerApp(r *Replica) error {
	proc, err := r.Node.StartProcess(d.cfg.ServerComponent, func(stop <-chan struct{}) { <-stop })
	if err != nil {
		return fmt.Errorf("core: start server-app process: %w", err)
	}
	app := d.cfg.NewServerApp(r.Node.Name())
	if err := app.Start(); err != nil {
		proc.Stop()
		return fmt.Errorf("core: start server app: %w", err)
	}

	reattach := false
	r.mu.Lock()
	if r.server != nil {
		reattach = true // restart path: keep the engine's restart budget
	}
	r.mu.Unlock()

	cfg := ftim.ServerConfig{
		Component: d.cfg.ServerComponent,
		Engine:    r.Engine,
		Rule:      engine.RecoveryRule{MaxLocalRestarts: 3, Exhausted: engine.ExhaustKeepRestarting},
		Restart:   func() error { return d.restartServerApp(r.Node.Name()) },
	}
	var f *ftim.ServerFTIM
	if reattach {
		f, err = initializeServerReattach(cfg)
	} else {
		f, err = ftim.InitializeServer(cfg)
	}
	if err != nil {
		app.Stop()
		proc.Stop()
		return fmt.Errorf("core: server FTIM: %w", err)
	}
	// Abrupt kill silences the FTIM but keeps the engine registration.
	proc.OnKill(f.Crash)

	r.mu.Lock()
	r.server = &serverReplica{proc: proc, f: f, app: app}
	r.mu.Unlock()
	return nil
}

// initializeServerReattach is InitializeServer via the engine's reattach
// path (restart budget preserved).
func initializeServerReattach(cfg ftim.ServerConfig) (*ftim.ServerFTIM, error) {
	cfg.Reattach = true
	return ftim.InitializeServer(cfg)
}

// restartServerApp is the engine's local recovery provision for the
// server application: stateless, so a fresh instance is a full recovery.
func (d *Deployment) restartServerApp(nodeName string) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return fmt.Errorf("core: deployment stopped")
	}
	r := d.replicas[nodeName]
	d.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	if r.Node.State() != cluster.NodeUp {
		return fmt.Errorf("core: node %s is %s", nodeName, r.Node.State())
	}

	r.mu.Lock()
	old := r.server
	r.mu.Unlock()
	if old != nil {
		old.f.Crash()
		old.proc.Kill()
		old.app.Stop()
	}
	for _, n := range r.Node.Networks() {
		n.RestorePrefix(r.Node.Name() + ":" + d.cfg.ServerComponent)
	}
	return d.buildServerApp(r)
}

// ServerAppRunning reports whether a node's server app process is live.
func (d *Deployment) ServerAppRunning(nodeName string) bool {
	r := d.Replica(nodeName)
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.server != nil && r.server.proc.State() == cluster.ProcRunning
}

// KillServerApp abruptly terminates a node's OPC server application — a
// fifth failure mode beyond the paper's four, recovered locally because
// the component is stateless.
func (d *Deployment) KillServerApp(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.mu.Lock()
	srv := r.server
	r.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("core: no server app on %s", nodeName)
	}
	srv.proc.Kill()
	return nil
}

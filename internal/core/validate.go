package core

import (
	"errors"
	"fmt"
	"time"
)

// Validation sentinels. Mirrors the engine package's typed config errors:
// callers branch with errors.Is and read the offending field from the
// wrapping *ConfigError.
var (
	// ErrDuplicateNode means two roles name the same machine (pair node,
	// test node, fabric pool entry, or group placement).
	ErrDuplicateNode = errors.New("core: duplicate node name")

	// ErrUnknownNode means a group placement names a machine outside the
	// fabric's node pool.
	ErrUnknownNode = errors.New("core: unknown node")

	// ErrBadTimeout means an interval or timeout is non-positive (or
	// inconsistent, e.g. a peer timeout under the beat interval).
	ErrBadTimeout = errors.New("core: bad timeout")

	// ErrTooFewReplicas means a group has fewer than two members.
	ErrTooFewReplicas = errors.New("core: too few replicas")

	// ErrDuplicateGroup means AddGroup re-used an existing group ID.
	ErrDuplicateGroup = errors.New("core: duplicate group id")
)

// ConfigError ties a validation failure to the config field that caused
// it. It unwraps to one of the sentinels above.
type ConfigError struct {
	Field string
	Err   error
}

func (e *ConfigError) Error() string { return fmt.Sprintf("core: config field %s: %v", e.Field, e.Err) }

// Unwrap exposes the sentinel for errors.Is.
func (e *ConfigError) Unwrap() error { return e.Err }

func cfgErr(field string, sentinel error, detail string) error {
	if detail == "" {
		return &ConfigError{Field: field, Err: sentinel}
	}
	return &ConfigError{Field: field, Err: fmt.Errorf("%w: %s", sentinel, detail)}
}

// Validate checks a pair deployment config. It is strict: zero timeouts
// are rejected, so call it on an explicit config. The constructor path
// (New) applies defaults first and then validates, keeping the historical
// "zero means default" behavior.
func (c *Config) Validate() error {
	roles := []struct{ field, name string }{
		{"Node1", c.Node1}, {"Node2", c.Node2}, {"TestNode", c.TestNode},
	}
	names := map[string]string{}
	for _, r := range roles {
		if r.name == "" {
			return cfgErr(r.field, ErrDuplicateNode, "empty node name")
		}
		if prev, ok := names[r.name]; ok {
			return cfgErr(r.field, ErrDuplicateNode, fmt.Sprintf("%q also names %s", r.name, prev))
		}
		names[r.name] = r.field
	}
	timeouts := []struct {
		field string
		d     time.Duration
	}{
		{"HeartbeatInterval", c.HeartbeatInterval},
		{"PeerTimeout", c.PeerTimeout},
		{"CheckpointPeriod", c.CheckpointPeriod},
		{"AppTimeout", c.AppTimeout},
		{"DiverterRetry", c.DiverterRetry},
	}
	for _, t := range timeouts {
		if t.d <= 0 {
			return cfgErr(t.field, ErrBadTimeout, t.d.String())
		}
	}
	if c.PeerTimeout < c.HeartbeatInterval {
		return cfgErr("PeerTimeout", ErrBadTimeout,
			fmt.Sprintf("%s under heartbeat interval %s", c.PeerTimeout, c.HeartbeatInterval))
	}
	return nil
}

// Validate checks a fabric config. Strict like (*Config).Validate; the
// NewFabric path applies defaults first.
func (c *FabricConfig) Validate() error {
	if len(c.Nodes) < 2 {
		return cfgErr("Nodes", ErrTooFewReplicas,
			fmt.Sprintf("pool of %d, need at least 2", len(c.Nodes)))
	}
	seen := make(map[string]bool, len(c.Nodes))
	for _, name := range c.Nodes {
		if name == "" {
			return cfgErr("Nodes", ErrDuplicateNode, "empty node name")
		}
		if seen[name] {
			return cfgErr("Nodes", ErrDuplicateNode, name)
		}
		seen[name] = true
	}
	timeouts := []struct {
		field string
		d     time.Duration
	}{
		{"BeatInterval", c.BeatInterval},
		{"PeerTimeout", c.PeerTimeout},
		{"RPCTimeout", c.RPCTimeout},
	}
	for _, t := range timeouts {
		if t.d <= 0 {
			return cfgErr(t.field, ErrBadTimeout, t.d.String())
		}
	}
	if c.PeerTimeout < c.BeatInterval {
		return cfgErr("PeerTimeout", ErrBadTimeout,
			fmt.Sprintf("%s under beat interval %s", c.PeerTimeout, c.BeatInterval))
	}
	return nil
}

// validateSpec checks one group spec against the fabric's pool. The
// caller holds f.mu.
func (f *Fabric) validateSpec(spec *GroupSpec) error {
	if spec.ID != "" {
		if _, taken := f.groups[spec.ID]; taken {
			return cfgErr("ID", ErrDuplicateGroup, spec.ID)
		}
	}
	if len(spec.Nodes) > 0 {
		if len(spec.Nodes) < 2 {
			return cfgErr("Nodes", ErrTooFewReplicas, fmt.Sprintf("%d", len(spec.Nodes)))
		}
		seen := make(map[string]bool, len(spec.Nodes))
		for _, name := range spec.Nodes {
			if _, ok := f.nodes[name]; !ok {
				return cfgErr("Nodes", ErrUnknownNode, name)
			}
			if seen[name] {
				return cfgErr("Nodes", ErrDuplicateNode, name)
			}
			seen[name] = true
		}
		return nil
	}
	if spec.Replicas < 2 {
		return cfgErr("Replicas", ErrTooFewReplicas, fmt.Sprintf("%d", spec.Replicas))
	}
	if spec.Replicas > len(f.order) {
		return cfgErr("Replicas", ErrTooFewReplicas,
			fmt.Sprintf("%d replicas over a pool of %d", spec.Replicas, len(f.order)))
	}
	return nil
}

package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/com"
)

// Well-known CLSIDs for the OFTT coclasses, as they would appear under
// HKEY_CLASSES_ROOT\CLSID on each NT machine.
var (
	CLSIDEngine   = com.MustParseGUID("{9b2c5e00-aaaa-4000-8000-0c0c0c0c0c01}")
	CLSIDFTIM     = com.MustParseGUID("{9b2c5e00-aaaa-4000-8000-0c0c0c0c0c02}")
	CLSIDDiverter = com.MustParseGUID("{9b2c5e00-aaaa-4000-8000-0c0c0c0c0c03}")
	CLSIDMonitor  = com.MustParseGUID("{9b2c5e00-aaaa-4000-8000-0c0c0c0c0c04}")
)

// ProgIDs of the OFTT coclasses.
const (
	ProgIDEngine   = "OFTT.Engine.1"
	ProgIDFTIM     = "OFTT.FTIM.1"
	ProgIDDiverter = "OFTT.MessageDiverter.1"
	ProgIDMonitor  = "OFTT.SystemMonitor.1"
)

// registerCoclasses installs the OFTT class registrations in a node's COM
// registry — the moral equivalent of running regsvr32 on the OFTT DLLs
// during installation. The factories return objects whose IUnknown tables
// expose the live component, so CoCreateInstance-style activation works:
//
//	clsid, _ := node.Registry().CLSIDFromProgID("OFTT.Engine.1")
//	unk, impl, _ := node.Registry().CreateInstance(clsid, com.IIDOFTTEngine)
func registerCoclasses(node *cluster.Node, r *Replica) error {
	reg := node.Registry()
	entries := []struct {
		clsid  com.CLSID
		progID string
		iid    com.IID
		impl   func() any
	}{
		{CLSIDEngine, ProgIDEngine, com.IIDOFTTEngine, func() any { return r.Engine }},
		{CLSIDFTIM, ProgIDFTIM, com.IIDOFTTFtim, func() any {
			r.mu.Lock()
			defer r.mu.Unlock()
			return r.FTIM
		}},
		{CLSIDDiverter, ProgIDDiverter, com.IIDMessageQueue, func() any { return r.d.Div }},
	}
	for _, e := range entries {
		e := e
		factory := com.FactoryFunc(func() (com.Unknown, error) {
			impl := e.impl()
			if impl == nil {
				return nil, fmt.Errorf("com: %s not available on %s", e.progID, node.Name())
			}
			return com.NewObject(map[com.IID]any{e.iid: impl}), nil
		})
		if err := reg.RegisterClass(e.clsid, e.progID, factory); err != nil {
			return fmt.Errorf("core: register %s: %w", e.progID, err)
		}
	}
	return nil
}

package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/ftim"
	"repro/internal/netsim"
	"repro/internal/opc"
	"repro/internal/telemetry"
	"repro/internal/telephone"
)

// TelephoneOID is the well-known OID the telephone OPC server is exported
// under on the test machine.
var TelephoneOID = com.MustParseGUID("{0f7e4a10-3333-4000-8000-0d0d0d0d0d01}")

// CallTrackState is the application-level extra state beyond the tracker:
// operator messages received through the diverter.
type CallTrackState struct {
	MsgCount int64
	LastMsg  string
}

// CallTrackApp is the paper's Section 4 demonstration application: an OPC
// client that keeps track of the usage of the simulated telephone system,
// displaying busy-line counts in a histogram. It is stateful, so it is
// linked with the client FTIM and checkpointed.
type CallTrackApp struct {
	node    string
	network *netsim.Network
	server  netsim.Addr
	oid     dcom.ObjectID
	lines   int
	rate    time.Duration

	Tracker *telephone.Tracker
	Extra   CallTrackState

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	dcli   *dcom.Client
	client *opc.Client
	active bool   // executing copy (Activate..Deactivate)
	live   bool   // OPC subscription established
	gen    uint64 // activation generation; retires stale reconnect loops
	ins    dcom.Instruments
}

// InstrumentDCOM routes the copy's OPC-over-DCOM client metrics (call
// latency, frame sizes, errors, in-flight calls, write-batch sizes) into
// reg. It applies to the current connection, if any, and to every future
// one.
func (a *CallTrackApp) InstrumentDCOM(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	label := `{node="` + a.node + `"}`
	ins := dcom.Instruments{
		CallLatency: reg.Histogram("oftt_dcom_call_us"+label, telemetry.DurationBuckets...),
		FrameBytes:  reg.Histogram("oftt_dcom_frame_bytes"+label, telemetry.SizeBuckets...),
		Errors:      reg.Counter("oftt_dcom_call_errors_total" + label),
		InFlight:    reg.Gauge("oftt_dcom_inflight_calls" + label),
		WriteBatch:  reg.Histogram("oftt_dcom_write_batch_frames"+label, telemetry.DepthBuckets...),
	}
	a.mu.Lock()
	a.ins = ins
	if a.dcli != nil {
		a.dcli.Instrument(ins)
	}
	a.mu.Unlock()
}

// NewCallTrackApp builds an inactive Call Track copy on a node. It
// subscribes to the telephone OPC server at server (OID oid) over network
// when activated.
func NewCallTrackApp(node string, network *netsim.Network, server netsim.Addr,
	oid dcom.ObjectID, lines int, rate time.Duration) *CallTrackApp {
	if lines <= 0 {
		lines = 5
	}
	if rate <= 0 {
		rate = 10 * time.Millisecond
	}
	return &CallTrackApp{
		node:    node,
		network: network,
		server:  server,
		oid:     oid,
		lines:   lines,
		rate:    rate,
		Tracker: telephone.NewTracker(lines, 1000),
	}
}

var (
	_ ReplicatedApp  = (*CallTrackApp)(nil)
	_ MessageHandler = (*CallTrackApp)(nil)
)

// Setup registers the Call Track state for checkpointing.
func (a *CallTrackApp) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	if err := f.RegisterState("calltrack", a.Tracker.State()); err != nil {
		return err
	}
	// Tracker updates and checkpoint captures/restores must exclude each
	// other: share the registry's lock.
	a.Tracker.SetLocker(f.Registry())
	return f.RegisterState("messages", &a.Extra)
}

// connectRetryDelay paces the background reconnect loop of a copy that
// activated blind (telephone server down or the dial deadline blown on a
// loaded machine).
const connectRetryDelay = 100 * time.Millisecond

// Activate marks this copy as the executing one and connects it to the
// telephone OPC server. Activation itself never fails: if the server is
// unreachable — down, or simply slow enough that the dial deadline
// expires on a loaded (e.g. race-detector) run — the copy comes up blind
// and keeps retrying in the background until Deactivate.
func (a *CallTrackApp) Activate(restored bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.active {
		return
	}
	a.active = true
	a.gen++
	if a.connectLocked() {
		return
	}
	go a.reconnectLoop(a.gen)
}

// connectLocked attempts one OPC subscription; caller holds a.mu.
func (a *CallTrackApp) connectLocked() bool {
	from := netsim.Addr(a.node + ":" + "app-opc-cli")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	dcli, err := dcom.DialContext(ctx, a.network, from, a.server)
	if err != nil {
		return false
	}
	dcli.Instrument(a.ins)
	a.dcli = dcli
	a.client = opc.NewClient(opc.NewRemoteConnection(dcli, a.oid))
	g, err := a.client.AddGroup(opc.GroupConfig{
		Name:       "tel",
		UpdateRate: a.rate,
		Active:     true,
	}, a.ingest)
	if err != nil {
		a.client.Close()
		a.dcli.Close()
		a.client, a.dcli = nil, nil
		return false
	}
	g.AddItems(telephone.TelTags(a.lines)...)
	a.live = true
	return true
}

// reconnectLoop retries the OPC subscription of a blind active copy. The
// generation check retires the loop as soon as the copy deactivates (or a
// later activation starts its own loop).
func (a *CallTrackApp) reconnectLoop(gen uint64) {
	for {
		time.Sleep(connectRetryDelay)
		a.mu.Lock()
		if !a.active || a.gen != gen || a.live {
			a.mu.Unlock()
			return
		}
		ok := a.connectLocked()
		a.mu.Unlock()
		if ok {
			return
		}
	}
}

// ingest consumes OPC updates; the tracker locks the shared registry
// mutex internally, so checkpoints see consistent state.
func (a *CallTrackApp) ingest(updates []opc.ItemState) {
	a.Tracker.Ingest(updates)
}

// Deactivate stops tracking and releases the OPC connection.
func (a *CallTrackApp) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.client != nil {
		a.client.Close()
		a.client = nil
	}
	if a.dcli != nil {
		a.dcli.Close()
		a.dcli = nil
	}
	a.active = false
	a.live = false
	a.gen++
}

// HandleMessage consumes an operator message from the diverter.
func (a *CallTrackApp) HandleMessage(body []byte) error {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	if f == nil {
		return fmt.Errorf("calltrack: not set up")
	}
	f.WithLock(func() {
		a.Extra.MsgCount++
		a.Extra.LastMsg = string(body)
	})
	return nil
}

// Stop implements ReplicatedApp.
func (a *CallTrackApp) Stop() { a.Deactivate() }

// Live reports whether the copy is actively tracking.
func (a *CallTrackApp) Live() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// CallTrackDeployment is the full Figure 3 configuration: the redundant
// node pair running Call Track under OFTT, and the test-and-interface PC
// hosting the telephone system simulator (exported as an OPC server), the
// calling history generator, and the system monitor.
type CallTrackDeployment struct {
	*Deployment

	Sim       *telephone.Simulator
	TelServer *opc.Server
	telExp    *dcom.Exporter
	simProc   *cluster.Process
}

// CallTrackConfig parameterizes the demo deployment.
type CallTrackConfig struct {
	Config         // embedded toolkit configuration
	Lines      int // default 5 (the paper's telephone system)
	Callers    int // default 10
	UpdateRate time.Duration
	SimTick    time.Duration
}

// NewCallTrackDeployment assembles and starts the demo.
func NewCallTrackDeployment(cfg CallTrackConfig) (*CallTrackDeployment, error) {
	if cfg.Lines <= 0 {
		cfg.Lines = 5
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 10
	}
	if cfg.UpdateRate <= 0 {
		cfg.UpdateRate = 10 * time.Millisecond
	}
	if cfg.Component == "" {
		cfg.Component = "calltrack"
	}
	cfg.Config.applyDefaults()

	// Addresses are deterministic strings, so the factory can be set up
	// before the networks exist; the build hook fills in the segment and
	// the telemetry registry (also reached on app-restart rebuilds).
	serverAddr := netsim.Addr(cfg.TestNode + ":telephone-opc")
	var primaryNet *netsim.Network
	var reg *telemetry.Registry

	base := cfg.Config
	base.NewApp = func(node string) ReplicatedApp {
		a := NewCallTrackApp(node, primaryNet, serverAddr, TelephoneOID,
			cfg.Lines, cfg.UpdateRate)
		a.InstrumentDCOM(reg)
		return a
	}
	d, err := build(base, func(d *Deployment) {
		primaryNet = d.Nets[0]
		reg = d.Telemetry.Metrics()
	})
	if err != nil {
		return nil, err
	}

	ct := &CallTrackDeployment{Deployment: d}

	// Telephone simulator + OPC server on the test PC.
	ct.TelServer = opc.NewServer("Telephone.OPC.1")
	sim, err := telephone.NewSimulator(telephone.SimConfig{
		Lines:   cfg.Lines,
		Callers: cfg.Callers,
		Tick:    cfg.SimTick,
		Seed:    cfg.Seed + 100,
	}, ct.TelServer)
	if err != nil {
		d.stopAll()
		return nil, err
	}
	ct.Sim = sim

	exp, err := dcom.NewExporter(d.Nets[0], serverAddr)
	if err != nil {
		d.stopAll()
		return nil, err
	}
	if err := opc.ExportServer(exp, TelephoneOID, ct.TelServer); err != nil {
		exp.Close()
		d.stopAll()
		return nil, err
	}
	ct.telExp = exp

	simProc, err := d.Test.StartProcess("telephone-sim", func(stop <-chan struct{}) { <-stop })
	if err == nil {
		simProc.OwnEndpoint(d.Nets[0], serverAddr)
		ct.simProc = simProc
	}

	sim.Start()
	return ct, nil
}

// ActiveTracker returns the primary copy's tracker (nil if no primary).
func (ct *CallTrackDeployment) ActiveTracker() *telephone.Tracker {
	p := ct.Primary()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	app := p.App
	p.mu.Unlock()
	c, ok := app.(*CallTrackApp)
	if !ok {
		return nil
	}
	return c.Tracker
}

// Shutdown tears the demo down, honoring caller cancellation while the
// teardown finishes in the background.
func (ct *CallTrackDeployment) Shutdown(ctx context.Context) error {
	if ct.Sim != nil {
		ct.Sim.Stop()
	}
	if ct.telExp != nil {
		ct.telExp.Close()
	}
	return ct.Deployment.Shutdown(ctx)
}

// Package core assembles a complete OFTT deployment: the Figure 3
// configuration of two redundant nodes forming a single logical execution
// unit plus a test-and-interface machine hosting the system monitor and
// the message diverter. It wires every toolkit component together — the
// engines, the FTIM-linked replicated application, the diverter routing,
// and monitor reporting — and provides the four fault injections the
// paper's Section 4 demonstrates.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/diverter"
	"repro/internal/engine"
	"repro/internal/ftim"
	"repro/internal/monitor"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// ReplicatedApp is the application half the deployment manages on each
// node. Build one per node; the deployment activates exactly one copy at a
// time (the primary's).
type ReplicatedApp interface {
	// Setup registers the application's checkpointable state with its
	// FTIM. It runs before the first activation.
	Setup(f *ftim.ClientFTIM) error
	// Activate makes this copy live (it is now the executing primary);
	// restored reports whether checkpointed state was applied.
	Activate(restored bool)
	// Deactivate idles this copy (it is now a backup).
	Deactivate()
	// Stop releases the application's resources.
	Stop()
}

// MessageHandler is implemented by applications that consume diverter
// messages.
type MessageHandler interface {
	HandleMessage(body []byte) error
}

// Config parameterizes a deployment.
type Config struct {
	// Node1/Node2 are the pair's machine names (default node1/node2).
	Node1, Node2 string
	// TestNode hosts the monitor and diverter (default testpc).
	TestNode string
	// DualNetwork attaches the pair to two Ethernet segments.
	DualNetwork bool
	// Seed drives all simulation randomness.
	Seed int64

	// Component is the replicated application's monitored name
	// (default "app").
	Component string
	// NewApp builds the application instance for a node. nil runs the
	// toolkit without an application (engines only).
	NewApp func(nodeName string) ReplicatedApp

	// NewServerApp builds the node's stateless OPC-server application
	// (Figure 2's "OPC Server App (device interface)"); nil skips it. One
	// instance runs on every node, monitored by a server FTIM.
	NewServerApp func(nodeName string) ServerApp
	// ServerComponent is the server app's monitored name
	// (default "opcserver").
	ServerComponent string

	// HeartbeatInterval / PeerTimeout tune the engines (defaults 5ms/30ms:
	// CI-friendly versions of the paper's second-scale settings).
	HeartbeatInterval time.Duration
	PeerTimeout       time.Duration
	// CheckpointPeriod tunes the FTIMs (default 20ms).
	CheckpointPeriod time.Duration
	// Mode selects the checkpoint capture flavor.
	Mode ftim.CaptureMode
	// AppTimeout is the application heartbeat silence threshold.
	AppTimeout time.Duration
	// Rule is the application recovery rule (default: 1 local restart,
	// then switchover).
	Rule engine.RecoveryRule
	// Startup is the engines' negotiation policy.
	Startup engine.StartupPolicy

	// WithMonitor hosts a system monitor on the test node (default true;
	// set SkipMonitor to run without one, as Section 2.2.4 permits).
	SkipMonitor bool
	// DiverterRetry is the diverter redelivery interval (default 10ms).
	DiverterRetry time.Duration

	// TuneEngine, when set, adjusts each engine's config after the
	// deployment fills it (chaos/test knobs such as DisableTieBreak).
	TuneEngine func(*engine.Config)
	// TuneDiverter, when set, adjusts the diverter config before the
	// diverter starts (backoff policy, delivery ledger).
	TuneDiverter func(*diverter.Config)
}

func (c *Config) applyDefaults() {
	if c.Node1 == "" {
		c.Node1 = "node1"
	}
	if c.Node2 == "" {
		c.Node2 = "node2"
	}
	if c.TestNode == "" {
		c.TestNode = "testpc"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Component == "" {
		c.Component = "app"
	}
	if c.ServerComponent == "" {
		c.ServerComponent = "opcserver"
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 5 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 6 * c.HeartbeatInterval
	}
	if c.CheckpointPeriod <= 0 {
		c.CheckpointPeriod = 20 * time.Millisecond
	}
	if c.AppTimeout <= 0 {
		c.AppTimeout = 50 * time.Millisecond
	}
	if c.Rule.MaxLocalRestarts == 0 && c.Rule.Exhausted == 0 {
		c.Rule = engine.RecoveryRule{MaxLocalRestarts: 1, Exhausted: engine.ExhaustSwitchover}
	}
	if c.Startup.Retries == 0 {
		c.Startup = engine.StartupPolicy{
			Retries:       20,
			RetryInterval: 10 * time.Millisecond,
			Alone:         engine.AloneBecomePrimary,
		}
	}
	if c.DiverterRetry <= 0 {
		c.DiverterRetry = 10 * time.Millisecond
	}
}

// Deployment is a running OFTT system.
type Deployment struct {
	cfg Config

	Nets  []*netsim.Network
	Node1 *cluster.Node
	Node2 *cluster.Node
	Test  *cluster.Node

	// Telemetry is the deployment's observability hub: status store,
	// metrics registry, and recovery-timeline tracer. Always present.
	Telemetry *telemetry.Hub
	// Monitor is the classic dashboard view over Telemetry's status store
	// (nil when SkipMonitor, as Section 2.2.4 permits).
	Monitor *monitor.Monitor
	Div     *diverter.Diverter

	mu       sync.Mutex
	replicas map[string]*Replica
	routeOwn string // node currently owning the diverter route
	stopped  bool
}

// Errors.
var (
	// ErrNoSuchNode is returned for fault injection on unknown nodes.
	ErrNoSuchNode = errors.New("core: no such node")

	// ErrNoPrimary means the pair has not settled on a primary in time.
	ErrNoPrimary = errors.New("core: no primary")
)

// New builds and starts a deployment.
func New(cfg Config) (*Deployment, error) {
	return build(cfg, nil)
}

// NewWithNetworkHook is New with a hook that observes the first network
// segment before replicas are constructed, for application factories that
// need to dial out (e.g. OPC clients reaching a server on the test node).
func NewWithNetworkHook(cfg Config, hook func(*netsim.Network)) (*Deployment, error) {
	if hook == nil {
		return build(cfg, nil)
	}
	return build(cfg, func(d *Deployment) { hook(d.Nets[0]) })
}

// build is New with an optional hook that observes the partly-built
// deployment (networks and telemetry hub exist; replicas do not yet), so
// application factories can capture the segment they dial out on and the
// registry they report into.
func build(cfg Config, preHook func(*Deployment)) (*Deployment, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{
		cfg:      cfg,
		replicas: make(map[string]*Replica),
	}

	d.Nets = []*netsim.Network{netsim.New("ethA", cfg.Seed)}
	if cfg.DualNetwork {
		d.Nets = append(d.Nets, netsim.New("ethB", cfg.Seed+1))
	}
	d.Telemetry = telemetry.NewHub(4096)
	if !cfg.SkipMonitor {
		d.Monitor = monitor.FromHub(d.Telemetry)
	}
	if preHook != nil {
		preHook(d)
	}
	d.Node1 = cluster.NewNode(cfg.Node1, cfg.Seed+10, d.Nets...)
	d.Node2 = cluster.NewNode(cfg.Node2, cfg.Seed+11, d.Nets...)
	d.Test = cluster.NewNode(cfg.TestNode, cfg.Seed+12, d.Nets...)

	reg := d.Telemetry.Metrics()
	dcfg := diverter.Config{
		RetryInterval: cfg.DiverterRetry,
		Seed:          cfg.Seed,
		Instruments: diverter.Instruments{
			QueueDepth:    reg.Gauge("oftt_diverter_queue_depth"),
			Delivered:     reg.Counter("oftt_diverter_delivered_total"),
			Redelivered:   reg.Counter("oftt_diverter_redelivered_total"),
			Dropped:       reg.Counter("oftt_diverter_dropped_total"),
			DivertLatency: reg.Histogram("oftt_diverter_latency_us"),
			BatchSize:     reg.Histogram("oftt_diverter_batch_size", 1, 2, 4, 8, 16, 32, 64, 128),
		},
	}
	if cfg.TuneDiverter != nil {
		cfg.TuneDiverter(&dcfg)
	}
	d.Div = diverter.New(dcfg)
	d.Telemetry.AddCollector(diverterShardCollector(d.Div))
	for _, net := range d.Nets {
		d.Telemetry.AddCollector(netCollector(net))
	}

	for _, node := range []*cluster.Node{d.Node1, d.Node2} {
		r, err := d.buildReplica(node, false)
		if err != nil {
			d.stopAll()
			return nil, err
		}
		d.mu.Lock()
		d.replicas[node.Name()] = r
		d.mu.Unlock()
	}
	return d, nil
}

// sink returns the telemetry sink for engines and FTIMs. The hub is
// always present; the Monitor dashboard is just a view over it.
func (d *Deployment) sink() telemetry.Sink {
	return d.Telemetry
}

// netCollector snapshots one segment's fabric counters into the registry
// on demand (the pull side of the observability API — netsim itself never
// imports telemetry).
func netCollector(net *netsim.Network) func(*telemetry.Registry) {
	label := `{segment="` + net.Name() + `"}`
	return func(reg *telemetry.Registry) {
		s := net.Stats()
		reg.Gauge("oftt_net_frames_sent" + label).Set(s.FramesSent.Load())
		reg.Gauge("oftt_net_frames_dropped" + label).Set(s.FramesDropped.Load())
		reg.Gauge("oftt_net_datagrams_sent" + label).Set(s.DatagramsSent.Load())
		reg.Gauge("oftt_net_datagrams_lost" + label).Set(s.DatagramsLost.Load())
		reg.Gauge("oftt_net_conns_dialed" + label).Set(s.ConnsDialed.Load())
		reg.Gauge("oftt_net_conns_refused" + label).Set(s.ConnsRefused.Load())
		reg.Gauge("oftt_net_bytes_delivered" + label).Set(s.BytesDelivered.Load())
		reg.Gauge("oftt_net_partitions" + label).Set(int64(net.PartitionCount()))
	}
}

// diverterShardCollector snapshots the diverter's per-stripe queue depths
// into the registry on demand, one gauge per lock stripe — the hot path
// only maintains an atomic per-stripe count, so the gauges cost nothing
// until someone scrapes them.
func diverterShardCollector(div *diverter.Diverter) func(*telemetry.Registry) {
	return func(reg *telemetry.Registry) {
		for i, depth := range div.StripeDepths() {
			reg.Gauge(fmt.Sprintf(`oftt_diverter_shard_queue_depth{shard="%d"}`, i)).Set(depth)
		}
	}
}

// Replica looks up a node's replica.
func (d *Deployment) Replica(node string) *Replica {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replicas[node]
}

// Replicas returns both replicas.
func (d *Deployment) Replicas() []*Replica {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Replica, 0, len(d.replicas))
	for _, r := range d.replicas {
		out = append(out, r)
	}
	return out
}

// Primary returns the replica whose engine is primary, or nil.
func (d *Deployment) Primary() *Replica {
	for _, r := range d.Replicas() {
		if r.Engine.Role() == engine.RolePrimary {
			return r
		}
	}
	return nil
}

// Backup returns the replica whose engine is backup, or nil.
func (d *Deployment) Backup() *Replica {
	for _, r := range d.Replicas() {
		if r.Engine.Role() == engine.RoleBackup {
			return r
		}
	}
	return nil
}

// WaitForPrimaryContext blocks until a primary emerges or ctx is done.
func (d *Deployment) WaitForPrimaryContext(ctx context.Context) (*Replica, error) {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if p := d.Primary(); p != nil {
			return p, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %v", ErrNoPrimary, ctx.Err())
		case <-tick.C:
		}
	}
}

// WaitForRolesContext blocks until the pair is exactly one primary + one
// backup, or ctx is done.
func (d *Deployment) WaitForRolesContext(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if d.Primary() != nil && d.Backup() != nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: roles %v", ErrNoPrimary, d.roleSummary())
		case <-tick.C:
		}
	}
}

func (d *Deployment) roleSummary() map[string]string {
	out := make(map[string]string, 2)
	for _, r := range d.Replicas() {
		out[r.Node.Name()] = r.Engine.Role().String()
	}
	return out
}

// Send routes a message to the replicated application through the message
// diverter: it is delivered to whichever copy is primary, surviving
// switchovers with store-and-forward retry.
func (d *Deployment) Send(body []byte) (string, error) {
	return d.Div.Send(d.cfg.Component, body)
}

// Shutdown tears the whole deployment down. If ctx expires first,
// Shutdown returns ctx.Err() while teardown finishes in the background
// (half-stopped replicas are not left holding resources).
func (d *Deployment) Shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.stopAll()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (d *Deployment) stopAll() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return
	}
	d.stopped = true
	replicas := make([]*Replica, 0, len(d.replicas))
	for _, r := range d.replicas {
		replicas = append(replicas, r)
	}
	d.mu.Unlock()

	for _, r := range replicas {
		r.stop()
	}
	d.Div.Stop()
}

package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/com"
	"repro/internal/dcom"
	"repro/internal/ftim"
	"repro/internal/netsim"
	"repro/internal/opc"
)

// ProcDataOID is the well-known OID the process-data OPC server is
// exported under on the test machine for the subscriber-host demo.
var ProcDataOID = com.MustParseGUID("{0f7e4a10-3333-4000-8000-0d0d0d0d0d02}")

// OPCSubRecord is the durable form of one subscription: everything needed
// to re-materialize it on another node after a switchover. It is the
// checkpointed mirror of an opc.SubscriptionConfig.
type OPCSubRecord struct {
	ID           int32
	Name         string
	UpdateRateMS int64
	DeadbandPC   float64
	GoodOnly     bool
	Tags         []string
}

// OPCSubTable is the subscriber host's checkpointed state: the
// subscription table plus an ingest counter that makes progress (and its
// survival across failures) observable.
type OPCSubTable struct {
	NextID int32
	Subs   []OPCSubRecord
	// Ingested counts update deliveries across all subscriptions. It is
	// monotonic on one copy and survives switchover up to the checkpoint
	// window, like the Call Track histogram.
	Ingested int64
	// LastSeq records the most recent value of any tag ending in ".seq"
	// (the chaos and test feeds use such a sentinel).
	LastSeq int64
}

// OPCSubApp is a replicated OPC subscriber host: the paper's "OPC server
// as a fault-tolerant component" direction, rendered on the new data
// plane. The primary copy holds live opc.Subscription objects built from
// the checkpointed table; on switchover the backup re-subscribes from the
// restored table, so clients of the host observe a pause, not a loss of
// configuration.
type OPCSubApp struct {
	node    string
	network *netsim.Network
	server  netsim.Addr
	oid     dcom.ObjectID

	Table OPCSubTable

	mu     sync.Mutex
	f      *ftim.ClientFTIM
	dcli   *dcom.Client
	client *opc.Client
	live   bool
	subs   map[int32]*opc.Subscription
}

var _ ReplicatedApp = (*OPCSubApp)(nil)

// NewOPCSubApp builds an inactive subscriber host on a node. It connects
// to the OPC server at server (OID oid) over network when activated.
func NewOPCSubApp(node string, network *netsim.Network, server netsim.Addr,
	oid dcom.ObjectID) *OPCSubApp {
	return &OPCSubApp{
		node:    node,
		network: network,
		server:  server,
		oid:     oid,
		subs:    make(map[int32]*opc.Subscription),
	}
}

// Setup registers the subscription table for checkpointing.
func (a *OPCSubApp) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("opcsubs", &a.Table)
}

// Activate connects to the OPC server and materializes every table entry
// as a live subscription. restored=true means the table arrived through a
// checkpoint (switchover or restart) rather than local calls.
func (a *OPCSubApp) Activate(restored bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.live {
		return
	}
	from := netsim.Addr(a.node + ":" + "opcsub-cli")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	dcli, err := dcom.DialContext(ctx, a.network, from, a.server)
	if err != nil {
		// The server may be down; the copy is live but blind, exactly as
		// the Call Track copy behaves. The table is still safe.
		return
	}
	a.dcli = dcli
	a.client = opc.NewClient(opc.NewRemoteConnection(dcli, a.oid))

	var recs []OPCSubRecord
	a.withLock(func() { recs = append(recs, a.Table.Subs...) })
	for _, rec := range recs {
		a.materializeLocked(rec)
	}
	a.live = true
}

// withLock runs fn under the FTIM state lock when attached, or bare
// during tests that poke the app before Setup.
func (a *OPCSubApp) withLock(fn func()) {
	if a.f != nil {
		a.f.WithLock(fn)
		return
	}
	fn()
}

// materializeLocked builds the live subscription for rec. Caller holds
// a.mu; a.client must be non-nil.
func (a *OPCSubApp) materializeLocked(rec OPCSubRecord) {
	id := rec.ID
	sub, err := a.client.Subscribe(context.Background(), opc.SubscriptionConfig{
		Name:       rec.Name,
		UpdateRate: time.Duration(rec.UpdateRateMS) * time.Millisecond,
		DeadbandPC: rec.DeadbandPC,
		GoodOnly:   rec.GoodOnly,
		Tags:       rec.Tags,
		OnChange:   func(updates []opc.ItemState) { a.ingest(id, updates) },
	})
	if err != nil {
		return
	}
	a.subs[id] = sub
}

// ingest consumes one delivery under the checkpoint lock so captures see
// a consistent (Ingested, LastSeq) pair.
func (a *OPCSubApp) ingest(_ int32, updates []opc.ItemState) {
	a.withLock(func() {
		a.Table.Ingested += int64(len(updates))
		for i := range updates {
			tag := updates[i].Tag
			if len(tag) >= 4 && tag[len(tag)-4:] == ".seq" {
				if v, ok := updates[i].Value.NumericValue(); ok {
					a.Table.LastSeq = int64(v)
				}
			}
		}
	})
}

// AddSubscription appends a record to the durable table and, when the
// copy is live, materializes it immediately. The assigned ID is stable
// across switchover.
func (a *OPCSubApp) AddSubscription(rec OPCSubRecord) (int32, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if rec.UpdateRateMS <= 0 {
		rec.UpdateRateMS = 100
	}
	if len(rec.Tags) == 0 {
		return 0, fmt.Errorf("opcsub: subscription needs tags")
	}
	a.withLock(func() {
		a.Table.NextID++
		rec.ID = a.Table.NextID
		a.Table.Subs = append(a.Table.Subs, rec)
	})
	if a.live && a.client != nil {
		a.materializeLocked(rec)
	}
	return rec.ID, nil
}

// RemoveSubscription drops a record (and its live subscription, if any).
func (a *OPCSubApp) RemoveSubscription(id int32) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.withLock(func() {
		subs := a.Table.Subs[:0]
		for _, rec := range a.Table.Subs {
			if rec.ID != id {
				subs = append(subs, rec)
			}
		}
		a.Table.Subs = subs
	})
	if sub, ok := a.subs[id]; ok {
		delete(a.subs, id)
		sub.Close()
	}
}

// Snapshot returns a copy of the durable table.
func (a *OPCSubApp) Snapshot() OPCSubTable {
	a.mu.Lock()
	defer a.mu.Unlock()
	var t OPCSubTable
	a.withLock(func() {
		t = a.Table
		t.Subs = append([]OPCSubRecord(nil), a.Table.Subs...)
	})
	return t
}

// Deactivate tears down the live subscriptions and the connection; the
// table stays (it is the checkpointed state).
func (a *OPCSubApp) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for id, sub := range a.subs {
		delete(a.subs, id)
		sub.Close()
	}
	if a.client != nil {
		a.client.Close()
		a.client = nil
	}
	if a.dcli != nil {
		a.dcli.Close()
		a.dcli = nil
	}
	a.live = false
}

// Stop implements ReplicatedApp.
func (a *OPCSubApp) Stop() { a.Deactivate() }

// Live reports whether the copy holds live subscriptions.
func (a *OPCSubApp) Live() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.live
}

// OPCSubDeployment is the subscriber-host demo: the redundant pair
// running OPCSubApp under OFTT, and the test PC exporting a process-data
// OPC server whose values a feeder drives.
type OPCSubDeployment struct {
	*Deployment

	ProcServer *opc.Server
	procExp    *dcom.Exporter
}

// OPCSubConfig parameterizes the subscriber-host deployment.
type OPCSubConfig struct {
	Config
	// Items seeds the process-data namespace with proc.u<i>.pv tags plus
	// the proc.seq sentinel (default 32).
	Items int
}

// NewOPCSubDeployment assembles and starts the subscriber-host demo.
func NewOPCSubDeployment(cfg OPCSubConfig) (*OPCSubDeployment, error) {
	if cfg.Items <= 0 {
		cfg.Items = 32
	}
	if cfg.Component == "" {
		cfg.Component = "opcsub"
	}
	cfg.Config.applyDefaults()

	serverAddr := netsim.Addr(cfg.TestNode + ":procdata-opc")
	var primaryNet *netsim.Network

	base := cfg.Config
	base.NewApp = func(node string) ReplicatedApp {
		return NewOPCSubApp(node, primaryNet, serverAddr, ProcDataOID)
	}
	d, err := build(base, func(d *Deployment) {
		primaryNet = d.Nets[0]
	})
	if err != nil {
		return nil, err
	}

	od := &OPCSubDeployment{Deployment: d}
	od.ProcServer = opc.NewServer("ProcData.OPC.1")
	for i := 0; i < cfg.Items; i++ {
		if err := od.ProcServer.AddItem(opc.ItemDef{
			Tag:           fmt.Sprintf("proc.u%d.pv", i),
			CanonicalType: opc.VTFloat64,
		}); err != nil {
			d.stopAll()
			return nil, err
		}
	}
	if err := od.ProcServer.AddItem(opc.ItemDef{
		Tag:           "proc.seq",
		CanonicalType: opc.VTInt64,
	}); err != nil {
		d.stopAll()
		return nil, err
	}

	exp, err := dcom.NewExporter(d.Nets[0], serverAddr)
	if err != nil {
		d.stopAll()
		return nil, err
	}
	if err := opc.ExportServer(exp, ProcDataOID, od.ProcServer); err != nil {
		exp.Close()
		d.stopAll()
		return nil, err
	}
	od.procExp = exp
	return od, nil
}

// ActiveSubApp returns the primary copy's subscriber host (nil if none).
func (od *OPCSubDeployment) ActiveSubApp() *OPCSubApp {
	p := od.Primary()
	if p == nil {
		return nil
	}
	p.mu.Lock()
	app := p.App
	p.mu.Unlock()
	a, ok := app.(*OPCSubApp)
	if !ok {
		return nil
	}
	return a
}

// Shutdown tears the demo down.
func (od *OPCSubDeployment) Shutdown(ctx context.Context) error {
	if od.procExp != nil {
		od.procExp.Close()
	}
	if od.ProcServer != nil {
		od.ProcServer.Close()
	}
	return od.Deployment.Shutdown(ctx)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

func newTestFabric(t *testing.T, cfg FabricConfig) *Fabric {
	t.Helper()
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	t.Cleanup(func() { _ = f.Shutdown(context.Background()) })
	return f
}

func waitGroup(t *testing.T, g *Group, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := g.WaitForRolesContext(ctx); err != nil {
		t.Fatalf("group %s never settled: %v", g.ID(), err)
	}
}

// TestFabricTwoGroups is the README quickstart shape: one pair group and
// one trio group sharing a 4-node pool, each independently electing a
// primary and receiving its own diverter traffic.
func TestFabricTwoGroups(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 4, Seed: 7})

	pair, err := f.AddGroup(GroupSpec{ID: "pair", Nodes: []string{"n1", "n2"}})
	if err != nil {
		t.Fatalf("AddGroup pair: %v", err)
	}
	trio, err := f.AddGroup(GroupSpec{ID: "trio", Nodes: []string{"n2", "n3", "n4"}})
	if err != nil {
		t.Fatalf("AddGroup trio: %v", err)
	}
	waitGroup(t, pair, 5*time.Second)
	waitGroup(t, trio, 5*time.Second)

	// The handles are the lookup surface.
	if f.Group("pair") != pair || f.Group("trio") != trio {
		t.Fatalf("Group() lookup mismatch")
	}
	// A pair keeps the tie-break protocol; a trio elects by lease.
	if term := pair.Primary().LeaseTerm(); term != 0 {
		t.Fatalf("pair group opened lease term %d", term)
	}
	if term := trio.Primary().LeaseTerm(); term == 0 {
		t.Fatalf("trio group never opened a lease term")
	}

	// Per-group diverter traffic lands on each group's own primary.
	for i := 0; i < 5; i++ {
		if _, err := pair.Send([]byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatalf("pair send: %v", err)
		}
		if _, err := trio.Send([]byte(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatalf("trio send: %v", err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && (pair.Delivered() < 5 || trio.Delivered() < 5) {
		time.Sleep(2 * time.Millisecond)
	}
	if pair.Delivered() < 5 || trio.Delivered() < 5 {
		t.Fatalf("deliveries: pair=%d trio=%d, want 5 each", pair.Delivered(), trio.Delivered())
	}
}

// TestFabricAutoPlacement lets the fabric place groups round-robin and
// auto-assign IDs.
func TestFabricAutoPlacement(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 3, Seed: 3})
	var groups []*Group
	for i := 0; i < 3; i++ {
		g, err := f.AddGroup(GroupSpec{Replicas: 2})
		if err != nil {
			t.Fatalf("AddGroup #%d: %v", i, err)
		}
		groups = append(groups, g)
	}
	seen := map[string]bool{}
	for _, g := range groups {
		if seen[g.ID()] {
			t.Fatalf("duplicate auto ID %s", g.ID())
		}
		seen[g.ID()] = true
		if len(g.MemberNodes()) != 2 {
			t.Fatalf("group %s placed on %v, want 2 nodes", g.ID(), g.MemberNodes())
		}
		waitGroup(t, g, 5*time.Second)
	}
	// Shingled placement: three 2-replica groups on a 3-node pool must
	// not all land on the same node pair.
	first := fmt.Sprint(groups[0].MemberNodes())
	diverse := false
	for _, g := range groups[1:] {
		if fmt.Sprint(g.MemberNodes()) != first {
			diverse = true
		}
	}
	if !diverse {
		t.Fatalf("all groups placed identically: %s", first)
	}
}

// TestFabricNodeLossAndRestart takes down a node hosting a trio group's
// primary: the survivors elect a replacement, and RestartNode brings the
// machine (and its member) back as a backup.
func TestFabricNodeLossAndRestart(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 3, Seed: 11})
	g, err := f.AddGroup(GroupSpec{ID: "g", Nodes: []string{"n1", "n2", "n3"}})
	if err != nil {
		t.Fatal(err)
	}
	waitGroup(t, g, 5*time.Second)
	victim := g.PrimaryNode()

	if err := g.Inject(FaultKillNode, victim); err != nil {
		t.Fatalf("kill node: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p := g.Primary(); p != nil && p.Node() != victim {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	p := g.Primary()
	if p == nil || p.Node() == victim {
		t.Fatalf("no replacement primary after node loss (primary=%v)", g.PrimaryNode())
	}

	if err := f.RestartNode(victim); err != nil {
		t.Fatalf("RestartNode: %v", err)
	}
	waitGroup(t, g, 5*time.Second)
	if got := g.Member(victim).Role(); got != engine.RoleBackup {
		t.Fatalf("restarted member role %s, want BACKUP", got)
	}
}

// TestFabricKillEngineRestartMember kills one member engine (middleware
// failure) without touching its node; the group recovers and the member
// is rebuilt in place.
func TestFabricKillEngineRestartMember(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 3, Seed: 13})
	g, err := f.AddGroup(GroupSpec{ID: "g", Nodes: []string{"n1", "n2", "n3"}})
	if err != nil {
		t.Fatal(err)
	}
	waitGroup(t, g, 5*time.Second)
	victim := g.PrimaryNode()

	if err := g.Inject(FaultKillEngine, victim); err != nil {
		t.Fatalf("kill engine: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p := g.Primary(); p != nil && p.Node() != victim {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if p := g.Primary(); p == nil || p.Node() == victim {
		t.Fatalf("no replacement primary after engine kill")
	}
	if err := g.RestartMember(victim); err != nil {
		t.Fatalf("RestartMember: %v", err)
	}
	waitGroup(t, g, 5*time.Second)
}

// TestFabricBeatMultiplexing is the netsim traffic assertion: adding
// more groups to a fixed node pair must not add beat datagrams — only
// entries per datagram. Beat streams are per node pair, not per group.
func TestFabricBeatMultiplexing(t *testing.T) {
	measure := func(groups int) (datagrams, entries int64) {
		f, err := NewFabric(FabricConfig{NodeCount: 2, Seed: int64(100 + groups)})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = f.Shutdown(context.Background()) }()
		for i := 0; i < groups; i++ {
			g, err := f.AddGroup(GroupSpec{Nodes: []string{"n1", "n2"}})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err = g.WaitForRolesContext(ctx)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
		}
		tr := f.Transport("n1")
		d0, e0 := tr.DatagramsReceived(), tr.EntriesReceived()
		time.Sleep(300 * time.Millisecond)
		return tr.DatagramsReceived() - d0, tr.EntriesReceived() - e0
	}

	d1, e1 := measure(1)
	d8, e8 := measure(8)
	if d1 == 0 || e8 == 0 {
		t.Fatalf("no beat traffic observed (d1=%d e8=%d)", d1, e8)
	}
	// Entries scale with groups; datagrams must not (same pair, same beat
	// clock). Allow 2x slack for scheduling noise.
	if d8 > 2*d1 {
		t.Fatalf("beat datagrams scaled with groups: %d (8 groups) vs %d (1 group)", d8, d1)
	}
	if e8 < 4*e1 {
		t.Fatalf("entries did not scale with groups: %d (8 groups) vs %d (1 group)", e8, e1)
	}
}

// TestFabricSendSurvivesSwitchover: traffic accepted before a primary
// loss is redelivered to the replacement (per-group no-acked-loss).
func TestFabricSendSurvivesSwitchover(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 3, Seed: 17})
	g, err := f.AddGroup(GroupSpec{ID: "g", Nodes: []string{"n1", "n2", "n3"}})
	if err != nil {
		t.Fatal(err)
	}
	waitGroup(t, g, 5*time.Second)
	victim := g.PrimaryNode()
	f.Isolate(victim)

	// Send while the group is (about to be) headless: the diverter holds
	// and retries until the replacement takes over.
	for i := 0; i < 10; i++ {
		if _, err := g.Send([]byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && g.Delivered() < 10 {
		time.Sleep(2 * time.Millisecond)
	}
	if g.Delivered() < 10 {
		t.Fatalf("delivered %d of 10 after switchover", g.Delivered())
	}
	f.HealNetworks()
}

// TestFabricValidation drives the typed spec errors.
func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric(FabricConfig{Nodes: []string{"a", "a"}}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("dup pool node: got %v", err)
	}
	if _, err := NewFabric(FabricConfig{Nodes: []string{"a"}}); !errors.Is(err, ErrTooFewReplicas) {
		t.Fatalf("one-node pool: got %v", err)
	}
	// Validate is strict on explicit configs; the NewFabric path defaults
	// non-positive intervals first (zero means default, like the engine).
	bad := FabricConfig{Nodes: []string{"a", "b"}, PeerTimeout: 30 * time.Millisecond,
		RPCTimeout: 200 * time.Millisecond}
	if err := bad.Validate(); !errors.Is(err, ErrBadTimeout) {
		t.Fatalf("zero beat interval: got %v", err)
	}

	f := newTestFabric(t, FabricConfig{NodeCount: 3, Seed: 19})
	cases := []struct {
		name string
		spec GroupSpec
		want error
	}{
		{"one replica", GroupSpec{Replicas: 1}, ErrTooFewReplicas},
		{"too many replicas", GroupSpec{Replicas: 4}, ErrTooFewReplicas},
		{"unknown node", GroupSpec{Nodes: []string{"n1", "nope"}}, ErrUnknownNode},
		{"duplicate placement", GroupSpec{Nodes: []string{"n1", "n1"}}, ErrDuplicateNode},
		{"single placement", GroupSpec{Nodes: []string{"n1"}}, ErrTooFewReplicas},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := f.AddGroup(tc.spec)
			if !errors.Is(err, tc.want) {
				t.Fatalf("AddGroup(%+v) = %v, want %v", tc.spec, err, tc.want)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not *ConfigError", err)
			}
		})
	}
	if _, err := f.AddGroup(GroupSpec{ID: "dup", Replicas: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddGroup(GroupSpec{ID: "dup", Replicas: 2}); !errors.Is(err, ErrDuplicateGroup) {
		t.Fatalf("duplicate group id: got %v", err)
	}
}

// TestFabricGroupTelemetryLabels: member engines report under
// group-qualified component names, so groups sharing a hub stay
// distinguishable on the dashboard.
func TestFabricGroupTelemetryLabels(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 2, Seed: 23})
	g, err := f.AddGroup(GroupSpec{ID: "labeled", Nodes: []string{"n1", "n2"}})
	if err != nil {
		t.Fatal(err)
	}
	waitGroup(t, g, 5*time.Second)
	found := false
	for _, st := range f.Telemetry.Store().Statuses() {
		if st.Component == "oftt-engine@labeled" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no group-labeled engine status row found")
	}
}

// TestFabricNodeStateAfterKill: a killed pool node reports down until
// restarted; group handles on healthy nodes keep working.
func TestFabricNodeStateAfterKill(t *testing.T) {
	f := newTestFabric(t, FabricConfig{NodeCount: 4, Seed: 29})
	a, err := f.AddGroup(GroupSpec{ID: "a", Nodes: []string{"n1", "n2"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddGroup(GroupSpec{ID: "b", Nodes: []string{"n3", "n4"}})
	if err != nil {
		t.Fatal(err)
	}
	waitGroup(t, a, 5*time.Second)
	waitGroup(t, b, 5*time.Second)

	if err := a.Inject(FaultKillNode, "n1"); err != nil {
		t.Fatal(err)
	}
	if f.Node("n1").State() == cluster.NodeUp {
		t.Fatalf("killed node still up")
	}
	// Group b, placed on disjoint nodes, is untouched.
	waitGroup(t, b, 5*time.Second)
	// Group a fails over to its surviving member.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p := a.Primary(); p != nil && p.Node() == "n2" {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("group a never failed over to n2 (primary=%q)", a.PrimaryNode())
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/diverter"
	"repro/internal/engine"
	"repro/internal/ftim"
	"repro/internal/telemetry"
)

// Replica is one node's half of the logical execution unit: its engine
// process plus its application process (FTIM-linked).
type Replica struct {
	d    *Deployment
	Node *cluster.Node

	mu         sync.Mutex
	Engine     *engine.Engine
	EngineProc *cluster.Process
	AppProc    *cluster.Process
	FTIM       *ftim.ClientFTIM
	App        ReplicatedApp
	server     *serverReplica
	appActive  bool
	stopped    bool
}

// buildReplica assembles engine + application on a node. reattach is true
// on restart paths so the engine's component entry (and restart budget)
// is preserved.
func (d *Deployment) buildReplica(node *cluster.Node, reattach bool) (*Replica, error) {
	r := &Replica{d: d, Node: node}

	peer := d.cfg.Node2
	if node.Name() == d.cfg.Node2 {
		peer = d.cfg.Node1
	}

	// OFTT engine, as its own process ("started by the application").
	engineProc, err := node.StartProcess("oftt-engine", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		return nil, fmt.Errorf("core: start engine process: %w", err)
	}
	ecfg := engine.Config{
		PeerNode:          peer,
		HeartbeatInterval: d.cfg.HeartbeatInterval,
		PeerTimeout:       d.cfg.PeerTimeout,
		Startup:           d.cfg.Startup,
		Preferred:         node.Name() == d.cfg.Node1,
		Metrics:           d.Telemetry.Metrics(),
	}
	if d.cfg.TuneEngine != nil {
		d.cfg.TuneEngine(&ecfg)
	}
	eng := engine.New(node, ecfg, d.sink())
	if err := eng.Start(engineProc); err != nil {
		engineProc.Stop()
		return nil, fmt.Errorf("core: start engine: %w", err)
	}
	engineProc.OnKill(eng.Stop)
	r.Engine = eng
	r.EngineProc = engineProc

	// Middleware failure containment: if the engine process dies while the
	// app copy is active, the copy deactivates — it has lost its fault
	// tolerance services and the peer will take over.
	go func() {
		<-engineProc.Done()
		if engineProc.State() == cluster.ProcKilled {
			r.deactivateApp()
		}
	}()

	if d.cfg.NewApp != nil {
		if err := d.buildApp(r, reattach); err != nil {
			eng.Stop()
			engineProc.Stop()
			return nil, err
		}
	}
	if d.cfg.NewServerApp != nil {
		if err := d.buildServerApp(r); err != nil {
			r.stop()
			return nil, err
		}
	}
	if err := registerCoclasses(node, r); err != nil {
		r.stop()
		return nil, err
	}
	return r, nil
}

// buildApp constructs the application process + FTIM on a replica.
func (d *Deployment) buildApp(r *Replica, reattach bool) error {
	appProc, err := r.Node.StartProcess(d.cfg.Component, func(stop <-chan struct{}) { <-stop })
	if err != nil {
		return fmt.Errorf("core: start app process: %w", err)
	}
	app := d.cfg.NewApp(r.Node.Name())

	f, err := ftim.InitializeDeferred(ftim.Config{
		Component:        d.cfg.Component,
		Engine:           r.Engine,
		CheckpointPeriod: d.cfg.CheckpointPeriod,
		Mode:             d.cfg.Mode,
		Timeout:          d.cfg.AppTimeout,
		Rule:             d.cfg.Rule,
		Reattach:         reattach,
		Metrics:          d.Telemetry.Metrics(),
		Restart:          func() error { return d.restartApp(r.Node.Name()) },
		OnActivate: func(restored bool) {
			r.mu.Lock()
			r.appActive = true
			r.mu.Unlock()
			app.Activate(restored)
			d.routeTo(r)
		},
		OnDeactivate: func() {
			r.deactivateApp()
		},
	})
	if err != nil {
		appProc.Stop()
		app.Stop()
		return fmt.Errorf("core: initialize FTIM: %w", err)
	}
	if err := app.Setup(f); err != nil {
		f.Shutdown()
		appProc.Stop()
		app.Stop()
		return fmt.Errorf("core: app setup: %w", err)
	}

	// An abrupt application kill (scenario c) crashes the FTIM with it:
	// heartbeats stop, the engine notices.
	appProc.OnKill(f.Crash)

	r.mu.Lock()
	r.AppProc = appProc
	r.FTIM = f
	r.App = app
	r.mu.Unlock()

	_ = f.AttachContext(context.Background())
	return nil
}

// deactivateApp idles the replica's application copy.
func (r *Replica) deactivateApp() {
	r.mu.Lock()
	wasActive := r.appActive
	r.appActive = false
	app := r.App
	r.mu.Unlock()
	if wasActive && app != nil {
		app.Deactivate()
		r.d.unroute(r)
	}
}

// CurrentApp returns the replica's current application instance (it is
// rebuilt by local restarts, so callers must re-fetch after recovery).
func (r *Replica) CurrentApp() ReplicatedApp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.App
}

// AppActive reports whether this replica's application copy is executing.
func (r *Replica) AppActive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appActive
}

// Healthy reports whether the replica is fully in service: node up,
// engine process running, and (when the deployment runs an application)
// the application process running. Chaos repair uses this to decide
// whether a node needs a power-cycle rejoin.
func (r *Replica) Healthy() bool {
	if r.Node.State() != cluster.NodeUp {
		return false
	}
	r.mu.Lock()
	engProc, appProc := r.EngineProc, r.AppProc
	r.mu.Unlock()
	if engProc == nil || engProc.State() != cluster.ProcRunning {
		return false
	}
	if r.d.cfg.NewApp != nil && (appProc == nil || appProc.State() != cluster.ProcRunning) {
		return false
	}
	return true
}

// stop tears the replica down cleanly.
func (r *Replica) stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	f, app := r.FTIM, r.App
	appProc, engProc := r.AppProc, r.EngineProc
	eng := r.Engine
	srv := r.server
	r.mu.Unlock()

	if srv != nil {
		srv.f.Shutdown()
		srv.app.Stop()
		srv.proc.Stop()
	}
	if f != nil {
		f.Shutdown()
	}
	if app != nil {
		app.Stop()
	}
	if appProc != nil {
		appProc.Stop()
	}
	eng.Stop()
	engProc.Stop()
}

// restartApp is the engine's local recovery provision for the application
// (the transient-fault path): rebuild the application process on the same
// node, reattaching to the existing component entry and rehydrating from
// the peer's checkpoint store.
func (d *Deployment) restartApp(nodeName string) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return errors.New("core: deployment stopped")
	}
	r := d.replicas[nodeName]
	d.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	if r.Node.State() != cluster.NodeUp {
		return fmt.Errorf("core: node %s is %s", nodeName, r.Node.State())
	}

	// Clear the remnant application process, keeping the engine intact.
	r.mu.Lock()
	oldProc, oldFTIM, oldApp := r.AppProc, r.FTIM, r.App
	r.AppProc, r.FTIM, r.App = nil, nil, nil
	r.appActive = false
	r.mu.Unlock()
	if oldFTIM != nil {
		oldFTIM.Crash()
	}
	if oldProc != nil {
		oldProc.Kill()
	}
	if oldApp != nil {
		oldApp.Stop()
	}
	// The killed process's endpoints (all named "<node>:<component>...")
	// come back with the restart.
	for _, n := range r.Node.Networks() {
		n.RestorePrefix(r.Node.Name() + ":" + d.cfg.Component)
	}
	return d.buildApp(r, true)
}

// RestartNode reboots a failed node (paying its non-deterministic boot
// delay) and rebuilds its replica, which rejoins the pair as backup.
func (d *Deployment) RestartNode(nodeName string) error {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		return errors.New("core: deployment stopped")
	}
	r := d.replicas[nodeName]
	d.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}

	// Silence the dead replica's objects (its processes are already gone).
	r.mu.Lock()
	oldEngine := r.Engine
	oldFTIM := r.FTIM
	oldApp := r.App
	r.mu.Unlock()
	if oldFTIM != nil {
		oldFTIM.Crash()
	}
	oldEngine.Stop()
	if oldApp != nil {
		oldApp.Stop()
	}

	r.Node.Boot()
	fresh, err := d.buildReplica(r.Node, false)
	if err != nil {
		return fmt.Errorf("core: rebuild replica: %w", err)
	}
	d.mu.Lock()
	d.replicas[nodeName] = fresh
	d.mu.Unlock()
	return nil
}

// routeTo points the message diverter at a replica's application copy.
// It closes out the recovery timeline: the rebind span marks the diverter
// re-pointing at the new primary, and the first successful delivery over
// the new route emits the terminal deliver span. During negotiated
// startup there is no open trace, so both spans are dropped as orphans.
func (d *Deployment) routeTo(r *Replica) {
	d.mu.Lock()
	d.routeOwn = r.Node.Name()
	d.mu.Unlock()
	d.Telemetry.RecordSpan(telemetry.SpanEvent{
		Node:      r.Node.Name(),
		Component: "diverter",
		Phase:     telemetry.PhaseRebind,
		Detail:    "route -> " + r.Node.Name(),
	})
	var delivered atomic.Bool
	d.Div.SetRoute(d.cfg.Component, func(msg diverter.Message) error {
		err := r.deliver(msg)
		if err == nil && delivered.CompareAndSwap(false, true) {
			d.Telemetry.RecordSpan(telemetry.SpanEvent{
				Node:      r.Node.Name(),
				Component: "diverter",
				Phase:     telemetry.PhaseDeliver,
				Detail:    "first delivery after rebind",
			})
		}
		return err
	})
}

// unroute clears the diverter route if r still owns it. If the other copy
// is an active primary, the route re-points at it instead of going dark:
// after a dual-primary episode resolves by tie-break, the demoted side's
// deactivation is the only route event — the surviving primary's FTIM was
// never deactivated, so nothing else would restore the route.
func (d *Deployment) unroute(r *Replica) {
	d.mu.Lock()
	owned := d.routeOwn == r.Node.Name()
	if owned {
		d.routeOwn = ""
		d.Div.ClearRoute(d.cfg.Component)
	}
	d.mu.Unlock()
	if !owned {
		return
	}
	for _, other := range d.Replicas() {
		if other != r && other.AppActive() {
			d.routeTo(other)
			return
		}
	}
}

// deliver hands a diverter message to the replica's application. Delivery
// fails (so the diverter retries) when the copy is not the live primary —
// exactly the "message sent during a switchover" case of Section 2.2.3.
func (r *Replica) deliver(msg diverter.Message) error {
	if r.Node.State() != cluster.NodeUp {
		return fmt.Errorf("core: node %s is down", r.Node.Name())
	}
	r.mu.Lock()
	active := r.appActive
	app := r.App
	proc := r.AppProc
	r.mu.Unlock()
	if !active || app == nil {
		return fmt.Errorf("core: copy on %s is not active", r.Node.Name())
	}
	if proc == nil || proc.State() != cluster.ProcRunning {
		return fmt.Errorf("core: app process on %s is not running", r.Node.Name())
	}
	handler, ok := app.(MessageHandler)
	if !ok {
		return nil // app does not consume messages; ack and drop
	}
	return handler.HandleMessage(msg.Body)
}

// --- Fault injection: the Section 4 demonstration scenarios ---

// KillNode is scenario (a), node failure: power off the machine.
func (d *Deployment) KillNode(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.Node.PowerOff()
	return nil
}

// BlueScreen is scenario (b), NT crash.
func (d *Deployment) BlueScreen(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.Node.BlueScreen()
	return nil
}

// KillApp is scenario (c), application software failure.
func (d *Deployment) KillApp(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.mu.Lock()
	proc := r.AppProc
	r.mu.Unlock()
	if proc == nil {
		return fmt.Errorf("core: no app process on %s", nodeName)
	}
	proc.Kill()
	return nil
}

// KillEngine is scenario (d), OFTT middleware failure.
func (d *Deployment) KillEngine(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.EngineProc.Kill()
	return nil
}

// waitSettled is a test/experiment helper: wait until cond holds.
func waitSettled(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// Fabric is the multi-group redesign of the core API: one simulated
// cluster scheduling many independent FT groups across a shared node
// pool. Where Deployment is the paper's Figure 3 — exactly two nodes,
// one replicated application — a Fabric hosts thousands of groups on a
// handful of machines:
//
//   - Every pool node runs one fabric agent owning one heartbeat socket
//     and one DCOM exporter (engine.NodeTransport). Group members on the
//     node share them; beat traffic is multiplexed per node *pair*, so
//     datagram rate scales with the pool, not the group count.
//   - Groups with three or more replicas elect their primary through the
//     engine's lease/quorum path; 2-replica groups keep the paper's
//     negotiate/tie-break pair protocol.
//   - Each group gets its own diverter route, so outside traffic
//     addressed to the group follows its primary across switchovers.
//
// Deployment remains the ergonomic two-node view; Fabric is the API for
// hosting many logical execution units behind one simulated cluster.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/diverter"
	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/telemetry"
)

// Fabric errors.
var (
	// ErrNoSuchGroup is returned for lookups of unknown group IDs.
	ErrNoSuchGroup = errors.New("core: no such group")

	// ErrFabricStopped is returned for operations on a shut-down fabric.
	ErrFabricStopped = errors.New("core: fabric stopped")

	// ErrFaultUnsupported is returned for fault kinds a fabric group
	// cannot inject (application faults — fabric groups run no app).
	ErrFaultUnsupported = errors.New("core: fault unsupported for fabric group")
)

// FabricConfig parameterizes a fabric.
type FabricConfig struct {
	// Nodes names the shared machine pool. Empty generates NodeCount
	// names ("n1", "n2", ...).
	Nodes []string
	// NodeCount sizes the generated pool when Nodes is empty (default 4).
	NodeCount int
	// Seed drives all simulation randomness.
	Seed int64

	// BeatInterval is the per-node-pair mux beat period (default 5ms —
	// the CI-friendly scale the pair deployment also uses).
	BeatInterval time.Duration
	// PeerTimeout declares a member dead after this much silence
	// (default 6x beat).
	PeerTimeout time.Duration
	// RPCTimeout bounds group control calls (default 200ms).
	RPCTimeout time.Duration
	// DiverterRetry is the diverter redelivery interval (default 10ms).
	DiverterRetry time.Duration

	// Ledger, when set, observes every fabric diverter message's
	// lifecycle (chaos campaigns audit it for acknowledged-loss).
	Ledger diverter.LedgerHook
}

func (c *FabricConfig) applyDefaults() {
	if len(c.Nodes) == 0 {
		if c.NodeCount <= 0 {
			c.NodeCount = 4
		}
		for i := 0; i < c.NodeCount; i++ {
			c.Nodes = append(c.Nodes, fmt.Sprintf("n%d", i+1))
		}
	}
	c.NodeCount = len(c.Nodes)
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BeatInterval <= 0 {
		c.BeatInterval = 5 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 6 * c.BeatInterval
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 200 * time.Millisecond
	}
	if c.DiverterRetry <= 0 {
		c.DiverterRetry = 10 * time.Millisecond
	}
}

// GroupSpec describes one FT group to schedule onto the fabric.
type GroupSpec struct {
	// ID names the group; it is also the group's diverter address.
	// Empty auto-assigns "g1", "g2", ...
	ID string
	// Nodes pins the group's members to specific pool nodes. Empty lets
	// the fabric place Replicas members round-robin across the pool.
	Nodes []string
	// Replicas is the member count for fabric-placed groups (default 2).
	// Two members keep the pair protocol; three or more elect by lease.
	Replicas int
	// LeaseDuration bounds a quorum-elected primary's role without
	// majority contact (default: the fabric's PeerTimeout).
	LeaseDuration time.Duration
	// Handler, when set, consumes diverter messages on the primary
	// member's node. Nil acknowledges and drops (delivery accounting
	// only).
	Handler func(node string, body []byte) error
}

// Fabric is a running multi-group cluster.
type Fabric struct {
	cfg FabricConfig

	// Net is the pool's shared Ethernet segment.
	Net *netsim.Network
	// Telemetry is the fabric-wide observability hub.
	Telemetry *telemetry.Hub
	// Div routes outside traffic to each group's primary.
	Div *diverter.Diverter

	mu         sync.Mutex
	order      []string
	nodes      map[string]*cluster.Node
	transports map[string]*engine.NodeTransport
	agents     map[string]*cluster.Process
	groups     map[string]*Group
	cursor     int
	autoID     int
	stopped    bool
}

// NewFabric builds a fabric: the node pool, one started transport agent
// per node, the telemetry hub, and the diverter. Groups are added with
// AddGroup.
func NewFabric(cfg FabricConfig) (*Fabric, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		cfg:        cfg,
		Net:        netsim.New("fabric0", cfg.Seed),
		Telemetry:  telemetry.NewHub(4096),
		nodes:      make(map[string]*cluster.Node),
		transports: make(map[string]*engine.NodeTransport),
		agents:     make(map[string]*cluster.Process),
		groups:     make(map[string]*Group),
	}
	reg := f.Telemetry.Metrics()
	f.Div = diverter.New(diverter.Config{
		RetryInterval: cfg.DiverterRetry,
		Seed:          cfg.Seed,
		Ledger:        cfg.Ledger,
		Instruments: diverter.Instruments{
			QueueDepth:  reg.Gauge("oftt_fabric_diverter_queue_depth"),
			Delivered:   reg.Counter("oftt_fabric_diverter_delivered_total"),
			Redelivered: reg.Counter("oftt_fabric_diverter_redelivered_total"),
			Dropped:     reg.Counter("oftt_fabric_diverter_dropped_total"),
		},
	})
	f.Telemetry.AddCollector(netCollector(f.Net))

	for i, name := range cfg.Nodes {
		node := cluster.NewNode(name, cfg.Seed+20+int64(i), f.Net)
		f.nodes[name] = node
		f.order = append(f.order, name)
		if err := f.startAgent(node); err != nil {
			f.teardown()
			return nil, err
		}
	}
	return f, nil
}

// startAgent boots one node's shared fabric plumbing: the agent process
// and the NodeTransport bound to it. Caller holds no fabric state yet or
// holds f.mu (both uses are single-writer).
func (f *Fabric) startAgent(node *cluster.Node) error {
	proc, err := node.StartProcess("oftt-fabric", func(stop <-chan struct{}) { <-stop })
	if err != nil {
		return fmt.Errorf("core: start fabric agent on %s: %w", node.Name(), err)
	}
	tr := engine.NewNodeTransport(node, engine.TransportConfig{
		BeatInterval: f.cfg.BeatInterval,
		RPCTimeout:   f.cfg.RPCTimeout,
	})
	if err := tr.Start(proc); err != nil {
		proc.Stop()
		return fmt.Errorf("core: start fabric transport on %s: %w", node.Name(), err)
	}
	proc.OnKill(tr.Stop)
	f.transports[node.Name()] = tr
	f.agents[node.Name()] = proc
	return nil
}

// NodeNames returns the pool's machine names in configuration order.
func (f *Fabric) NodeNames() []string {
	return append([]string(nil), f.cfg.Nodes...)
}

// Node looks up a pool node.
func (f *Fabric) Node(name string) *cluster.Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[name]
}

// Transport exposes one node's shared transport (traffic counters for
// scaling assertions).
func (f *Fabric) Transport(name string) *engine.NodeTransport {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.transports[name]
}

// Group looks up a running group by ID.
func (f *Fabric) Group(id string) *Group {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.groups[id]
}

// Groups returns every running group.
func (f *Fabric) Groups() []*Group {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Group, 0, len(f.groups))
	for _, g := range f.groups {
		out = append(out, g)
	}
	return out
}

// AddGroup validates and schedules one group onto the pool, builds a
// member engine per placement node over the shared transports, and
// installs the group's diverter route.
func (f *Fabric) AddGroup(spec GroupSpec) (*Group, error) {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return nil, ErrFabricStopped
	}
	if err := f.validateSpec(&spec); err != nil {
		f.mu.Unlock()
		return nil, err
	}
	if spec.ID == "" {
		f.autoID++
		spec.ID = fmt.Sprintf("g%d", f.autoID)
		if _, taken := f.groups[spec.ID]; taken {
			f.mu.Unlock()
			return nil, cfgErr("ID", ErrDuplicateGroup, spec.ID+" (auto)")
		}
	}
	if spec.LeaseDuration <= 0 {
		spec.LeaseDuration = f.cfg.PeerTimeout
	}
	placement := append([]string(nil), spec.Nodes...)
	if len(placement) == 0 {
		// Shingled round-robin: consecutive groups overlap node sets, so
		// every pair of pool nodes ends up sharing groups (and thus one
		// mux beat stream).
		if spec.Replicas == 0 {
			spec.Replicas = 2
		}
		for i := 0; i < spec.Replicas; i++ {
			placement = append(placement, f.order[(f.cursor+i)%len(f.order)])
		}
		f.cursor = (f.cursor + 1) % len(f.order)
	}
	g := &Group{f: f, spec: spec, nodes: placement, members: make(map[string]*engine.Engine)}
	f.groups[spec.ID] = g
	f.mu.Unlock()

	for i, name := range placement {
		if err := g.startMember(name, i == 0); err != nil {
			_ = g.Shutdown(context.Background())
			return nil, err
		}
	}
	f.Div.SetRoute(spec.ID, g.deliver)
	return g, nil
}

// memberConfig builds the engine config for one member of a group.
// Caller must not hold g.mu (reads only immutable spec/placement).
func (g *Group) memberConfig(nodeName string, preferred bool) engine.Config {
	var peers []string
	for _, n := range g.nodes {
		if n != nodeName {
			peers = append(peers, n)
		}
	}
	return engine.Config{
		GroupID:           g.spec.ID,
		Peers:             peers,
		HeartbeatInterval: g.f.cfg.BeatInterval,
		PeerTimeout:       g.f.cfg.PeerTimeout,
		LeaseDuration:     g.spec.LeaseDuration,
		RPCTimeout:        g.f.cfg.RPCTimeout,
		Transport:         g.f.Transport(nodeName),
		Preferred:         preferred,
		Startup: engine.StartupPolicy{
			Retries:       20,
			RetryInterval: 10 * time.Millisecond,
			Alone:         engine.AloneBecomePrimary,
		},
		Metrics: g.f.Telemetry.Metrics(),
	}
}

// startMember constructs and starts one member engine on a node.
func (g *Group) startMember(nodeName string, preferred bool) error {
	node := g.f.Node(nodeName)
	tr := g.f.Transport(nodeName)
	if node == nil || tr == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	e, err := engine.NewWithError(node, g.memberConfig(nodeName, preferred),
		&groupSink{hub: g.f.Telemetry, group: g.spec.ID})
	if err != nil {
		return fmt.Errorf("core: group %s member on %s: %w", g.spec.ID, nodeName, err)
	}
	if err := e.Start(g.f.agent(nodeName)); err != nil {
		return fmt.Errorf("core: start group %s member on %s: %w", g.spec.ID, nodeName, err)
	}
	g.mu.Lock()
	g.members[nodeName] = e
	g.mu.Unlock()
	return nil
}

func (f *Fabric) agent(nodeName string) *cluster.Process {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.agents[nodeName]
}

// RestartNode power-cycles a failed pool node back into service: reboot
// the machine, rebuild its fabric agent and transport, and re-create
// every group member it hosts (each rejoins its group as a backup, or
// re-elects if the group lost its primary).
func (f *Fabric) RestartNode(name string) error {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return ErrFabricStopped
	}
	node := f.nodes[name]
	oldTr := f.transports[name]
	oldAgent := f.agents[name]
	var hosted []*Group
	for _, g := range f.groups {
		if g.hasMember(name) {
			hosted = append(hosted, g)
		}
	}
	f.mu.Unlock()
	if node == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, name)
	}

	// Silence the remnants: member engines first (they unregister from
	// the dying transport), then the transport and agent process.
	for _, g := range hosted {
		if e := g.Member(name); e != nil {
			e.Stop()
		}
	}
	if oldTr != nil {
		oldTr.Stop()
	}
	if oldAgent != nil {
		oldAgent.Stop()
	}

	node.Boot()
	f.mu.Lock()
	if err := f.startAgent(node); err != nil {
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()

	for _, g := range hosted {
		preferred := len(g.nodes) > 0 && g.nodes[0] == name
		if err := g.startMember(name, preferred); err != nil {
			return err
		}
	}
	return nil
}

// Partition cuts all traffic between two pool nodes, both directions.
func (f *Fabric) Partition(a, b string) {
	f.Net.PartitionPrefix(a+":", b+":")
}

// PartitionOneWay cuts traffic from one pool node toward another while
// the reverse direction keeps flowing.
func (f *Fabric) PartitionOneWay(from, to string) {
	f.Net.PartitionPrefixOneWay(from+":", to+":")
}

// Isolate cuts a node off from every other pool node, both directions.
func (f *Fabric) Isolate(name string) {
	for _, other := range f.NodeNames() {
		if other != name {
			f.Net.PartitionPrefix(name+":", other+":")
		}
	}
}

// HealNetworks removes every partition and clears loss/latency.
func (f *Fabric) HealNetworks() {
	f.Net.HealAll()
	f.Net.SetLoss(0)
	f.Net.SetLatency(0, 0)
}

// Shutdown tears the fabric down: every group, every transport, the
// diverter. If ctx expires first it returns ctx.Err() while teardown
// finishes in the background.
func (f *Fabric) Shutdown(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.stopAll()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (f *Fabric) stopAll() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	groups := make([]*Group, 0, len(f.groups))
	for _, g := range f.groups {
		groups = append(groups, g)
	}
	f.mu.Unlock()
	for _, g := range groups {
		g.stopMembers()
	}
	f.teardown()
}

func (f *Fabric) teardown() {
	f.Div.Stop()
	f.mu.Lock()
	trs := make([]*engine.NodeTransport, 0, len(f.transports))
	for _, tr := range f.transports {
		trs = append(trs, tr)
	}
	agents := make([]*cluster.Process, 0, len(f.agents))
	for _, p := range f.agents {
		agents = append(agents, p)
	}
	f.mu.Unlock()
	for _, tr := range trs {
		tr.Stop()
	}
	for _, p := range agents {
		p.Stop()
	}
}

// Group is one FT group's view of the fabric: the thin per-group handle
// exposing the Deployment-shaped surface (Primary, WaitForRolesContext,
// Send, Inject, Shutdown).
type Group struct {
	f     *Fabric
	spec  GroupSpec
	nodes []string // placement, fixed at AddGroup

	mu      sync.Mutex
	members map[string]*engine.Engine
	stopped bool

	delivered atomic.Int64
}

// ID returns the group's name (also its diverter address).
func (g *Group) ID() string { return g.spec.ID }

// MemberNodes returns the group's placement in preference order.
func (g *Group) MemberNodes() []string { return append([]string(nil), g.nodes...) }

// Member returns the group's engine on one node (nil if none).
func (g *Group) Member(node string) *engine.Engine {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members[node]
}

// Members returns every member engine keyed by node name.
func (g *Group) Members() map[string]*engine.Engine {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]*engine.Engine, len(g.members))
	for n, e := range g.members {
		out[n] = e
	}
	return out
}

func (g *Group) hasMember(node string) bool {
	for _, n := range g.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Primary returns the member engine currently holding the primary role
// on a live node, or nil. A dead machine's member still reports its last
// role (nothing is running there to change it), so down nodes are
// excluded — the group's real primary is whoever the survivors elected.
func (g *Group) Primary() *engine.Engine {
	for n, e := range g.Members() {
		if node := g.f.Node(n); node == nil || node.State() != cluster.NodeUp {
			continue
		}
		if e.Role() == engine.RolePrimary {
			return e
		}
	}
	return nil
}

// PrimaryNode returns the primary member's node name ("" when none).
func (g *Group) PrimaryNode() string {
	if p := g.Primary(); p != nil {
		return p.Node()
	}
	return ""
}

// Roles returns every member's current role keyed by node name.
func (g *Group) Roles() map[string]engine.Role {
	out := make(map[string]engine.Role, len(g.nodes))
	for n, e := range g.Members() {
		out[n] = e.Role()
	}
	return out
}

// settled reports whether the group holds exactly one primary with every
// other live member a backup (a member on a downed node is not required
// to hold a role).
func (g *Group) settled() bool {
	primaries, backups, live := 0, 0, 0
	for n, e := range g.Members() {
		node := g.f.Node(n)
		if node == nil || node.State() != cluster.NodeUp {
			continue
		}
		switch e.Role() {
		case engine.RolePrimary:
			primaries++
			live++
		case engine.RoleBackup:
			backups++
			live++
		case engine.RoleNegotiating:
			live++
		}
	}
	return primaries == 1 && backups == live-1
}

// WaitForRolesContext blocks until the group settles on exactly one
// primary with every other live member a backup, or ctx is done.
func (g *Group) WaitForRolesContext(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if g.settled() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: group %s roles %v", ErrNoPrimary, g.spec.ID, g.Roles())
		case <-tick.C:
		}
	}
}

// WaitForPrimaryContext blocks until some member is primary, or ctx is
// done, and returns that member.
func (g *Group) WaitForPrimaryContext(ctx context.Context) (*engine.Engine, error) {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if p := g.Primary(); p != nil {
			return p, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: group %s: %v", ErrNoPrimary, g.spec.ID, ctx.Err())
		case <-tick.C:
		}
	}
}

// Send routes a message to the group through the fabric's diverter: it
// is delivered to whichever member is primary, surviving switchovers
// with store-and-forward retry.
func (g *Group) Send(body []byte) (string, error) {
	return g.f.Div.Send(g.spec.ID, body)
}

// Delivered reports how many diverter messages the group has accepted.
func (g *Group) Delivered() int64 { return g.delivered.Load() }

// deliver hands one diverter message to the group's current primary.
// Failure (no primary, node down) makes the diverter retry — the
// "message sent during a switchover" case, per group.
func (g *Group) deliver(msg diverter.Message) error {
	p := g.Primary()
	if p == nil {
		return fmt.Errorf("core: group %s has no live primary", g.spec.ID)
	}
	if g.spec.Handler != nil {
		if err := g.spec.Handler(p.Node(), msg.Body); err != nil {
			return err
		}
	}
	g.delivered.Add(1)
	return nil
}

// Inject applies one fault kind to one of the group's member nodes.
// Node-level faults (kill-node, bluescreen) take the whole machine down,
// affecting every group hosted there — that is the fabric's sharing
// model, not a bug. Application faults are unsupported (fabric groups
// run engines only).
func (g *Group) Inject(kind FaultKind, nodeName string) error {
	if !g.hasMember(nodeName) {
		return fmt.Errorf("%w: %s (group %s)", ErrNoSuchNode, nodeName, g.spec.ID)
	}
	switch kind {
	case FaultKillNode:
		node := g.f.Node(nodeName)
		if node == nil {
			return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
		}
		node.PowerOff()
		return nil
	case FaultBlueScreen:
		node := g.f.Node(nodeName)
		if node == nil {
			return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
		}
		node.BlueScreen()
		return nil
	case FaultKillEngine:
		e := g.Member(nodeName)
		if e == nil {
			return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
		}
		// An abrupt member death: the engine goes silent; peers elect or
		// take over. RestartMember rebuilds it.
		e.Stop()
		return nil
	case FaultHangEngine:
		e := g.Member(nodeName)
		if e == nil {
			return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
		}
		e.SuspendBeats()
		return nil
	default:
		return fmt.Errorf("%w: %s", ErrFaultUnsupported, kind)
	}
}

// ResumeEngine unwedges a member hung by Inject(FaultHangEngine, node).
func (g *Group) ResumeEngine(nodeName string) error {
	e := g.Member(nodeName)
	if e == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	e.ResumeBeats()
	return nil
}

// RestartMember rebuilds a dead member (after FaultKillEngine) on a live
// node; it rejoins the group as a backup.
func (g *Group) RestartMember(nodeName string) error {
	if !g.hasMember(nodeName) {
		return fmt.Errorf("%w: %s (group %s)", ErrNoSuchNode, nodeName, g.spec.ID)
	}
	node := g.f.Node(nodeName)
	if node == nil || node.State() != cluster.NodeUp {
		return fmt.Errorf("core: node %s is not up", nodeName)
	}
	if e := g.Member(nodeName); e != nil {
		e.Stop()
	}
	return g.startMember(nodeName, len(g.nodes) > 0 && g.nodes[0] == nodeName)
}

// Shutdown removes the group from the fabric: clears its diverter route
// and stops every member. If ctx expires first it returns ctx.Err()
// while teardown finishes in the background.
func (g *Group) Shutdown(ctx context.Context) error {
	g.f.mu.Lock()
	if g.f.groups[g.spec.ID] == g {
		delete(g.f.groups, g.spec.ID)
	}
	g.f.mu.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.stopMembers()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *Group) stopMembers() {
	g.mu.Lock()
	if g.stopped {
		g.mu.Unlock()
		return
	}
	g.stopped = true
	members := make([]*engine.Engine, 0, len(g.members))
	for _, e := range g.members {
		members = append(members, e)
	}
	g.mu.Unlock()
	g.f.Div.ClearRoute(g.spec.ID)
	for _, e := range members {
		e.Stop()
	}
}

// groupSink labels every member engine's telemetry with its group so a
// thousand engines sharing one hub stay distinguishable: component
// "oftt-engine" becomes "oftt-engine@<group>".
type groupSink struct {
	hub   *telemetry.Hub
	group string
}

func (s *groupSink) label(component string) string { return component + "@" + s.group }

func (s *groupSink) ReportStatus(st telemetry.Status) {
	st.Component = s.label(st.Component)
	s.hub.ReportStatus(st)
}

func (s *groupSink) Emit(e telemetry.Event) {
	e.Component = s.label(e.Component)
	s.hub.Emit(e)
}

func (s *groupSink) RecordSpan(ev telemetry.SpanEvent) {
	ev.Component = s.label(ev.Component)
	s.hub.RecordSpan(ev)
}

func (s *groupSink) PushMetrics(b telemetry.MetricBatch) { s.hub.PushMetrics(b) }

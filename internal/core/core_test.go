package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/com"
	"repro/internal/engine"
	"repro/internal/ftim"
)

// countingApp is a minimal replicated application for deployment tests.
type countingApp struct {
	node string

	mu          sync.Mutex
	State       struct{ Count int64 }
	f           *ftim.ClientFTIM
	activations int
	restoredLog []bool
	deactiv     int
	msgs        []string
	stopped     bool
}

func newCountingApp(node string) *countingApp { return &countingApp{node: node} }

func (a *countingApp) Setup(f *ftim.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	return f.RegisterState("count", &a.State)
}

func (a *countingApp) Activate(restored bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.activations++
	a.restoredLog = append(a.restoredLog, restored)
}

func (a *countingApp) Deactivate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.deactiv++
}

func (a *countingApp) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stopped = true
}

func (a *countingApp) HandleMessage(body []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.msgs = append(a.msgs, string(body))
	return nil
}

func (a *countingApp) bump(n int64) {
	a.f.WithLock(func() { a.State.Count += n })
}

func (a *countingApp) messages() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.msgs...)
}

// testDeployment builds a deployment over countingApps and tracks them.
func testDeployment(t *testing.T, mutate func(*Config)) (*Deployment, map[string]*countingApp) {
	t.Helper()
	apps := make(map[string]*countingApp)
	var mu sync.Mutex
	cfg := Config{
		Seed: 7,
		NewApp: func(node string) ReplicatedApp {
			a := newCountingApp(node)
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stopNow(d))
	if err := waitRoles(d, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	return d, apps
}

func TestDeploymentFormsPair(t *testing.T) {
	d, apps := testDeployment(t, nil)
	p, b := d.Primary(), d.Backup()
	if p == nil || b == nil || p == b {
		t.Fatalf("roles: %v", d.roleSummary())
	}
	// Exactly the primary's copy is active.
	if !p.AppActive() || b.AppActive() {
		t.Fatalf("active: primary=%v backup=%v", p.AppActive(), b.AppActive())
	}
	pApp := apps[p.Node.Name()]
	pApp.mu.Lock()
	defer pApp.mu.Unlock()
	if pApp.activations != 1 || pApp.restoredLog[0] {
		t.Fatalf("primary app activations: %+v", pApp.restoredLog)
	}
}

// TestFigure2 exercises every arrow of the paper's architecture diagram:
// FTIM->engine heartbeats, engine<->engine heartbeats, checkpoint data
// primary->backup, diverter->primary message flow, and engine->monitor
// status reporting.
func TestFigure2(t *testing.T) {
	d, apps := testDeployment(t, nil)
	p := d.Primary()
	pApp := apps[p.Node.Name()]

	// Checkpoint arrow: state changes reach the backup's store.
	pApp.bump(41)
	if !waitSettled(2*time.Second, func() bool {
		return d.Backup() != nil && d.Backup().Engine.Store().LastSeq() > 0
	}) {
		t.Fatal("checkpoint data never reached the backup")
	}

	// Diverter arrow: messages reach the primary copy.
	if _, err := d.Send([]byte("operator-hello")); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(2*time.Second, func() bool {
		msgs := pApp.messages()
		return len(msgs) == 1 && msgs[0] == "operator-hello"
	}) {
		t.Fatalf("diverter message lost: %v", pApp.messages())
	}

	// Monitor arrow: both engines and the app report status rows.
	if d.Monitor == nil {
		t.Fatal("monitor missing")
	}
	for _, node := range []string{"node1", "node2"} {
		if _, ok := d.Monitor.Status(node, "oftt-engine"); !ok {
			t.Fatalf("no engine status for %s", node)
		}
		if _, ok := d.Monitor.Status(node, "app"); !ok {
			t.Fatalf("no app status for %s", node)
		}
	}
	if len(d.Monitor.Events(0)) == 0 {
		t.Fatal("no events recorded")
	}
}

// The four Section 4 failure scenarios. Each must end with the system
// operating (a live primary) and the checkpointed count preserved.
func runScenario(t *testing.T, inject func(d *Deployment, primaryNode string)) {
	t.Helper()
	d, apps := testDeployment(t, nil)
	p := d.Primary()
	pName := p.Node.Name()
	pApp := apps[pName]

	// Make progress and pin it with an immediate checkpoint.
	pApp.bump(1234)
	if err := pApp.f.Save(); err != nil {
		t.Fatal(err)
	}

	inject(d, pName)

	// The system continues operating: a primary copy is live...
	if !waitSettled(5*time.Second, func() bool {
		np := d.Primary()
		return np != nil && np.AppActive()
	}) {
		t.Fatalf("no live primary after injection: %v", d.roleSummary())
	}
	// ...and the state survived.
	np := d.Primary()
	np.mu.Lock()
	app := np.App.(*countingApp)
	np.mu.Unlock()
	app.f.WithLock(func() {})
	if !waitSettled(2*time.Second, func() bool {
		app.mu.Lock()
		defer app.mu.Unlock()
		return app.State.Count == 1234
	}) {
		app.mu.Lock()
		defer app.mu.Unlock()
		t.Fatalf("state lost: count=%d on %s", app.State.Count, np.Node.Name())
	}
}

func TestScenarioA_NodeFailure(t *testing.T) {
	runScenario(t, func(d *Deployment, primary string) {
		if err := d.KillNode(primary); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScenarioB_NTCrash(t *testing.T) {
	runScenario(t, func(d *Deployment, primary string) {
		if err := d.BlueScreen(primary); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScenarioC_ApplicationFailure(t *testing.T) {
	runScenario(t, func(d *Deployment, primary string) {
		if err := d.KillApp(primary); err != nil {
			t.Fatal(err)
		}
	})
}

func TestScenarioD_MiddlewareFailure(t *testing.T) {
	runScenario(t, func(d *Deployment, primary string) {
		if err := d.KillEngine(primary); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAppLocalRestartRecoversState(t *testing.T) {
	// With a restart budget, an app kill is recovered locally (transient
	// fault provision) with state rehydrated from the backup's store, and
	// no switchover happens.
	d, apps := testDeployment(t, func(c *Config) {
		c.Rule = engine.RecoveryRule{MaxLocalRestarts: 3, Exhausted: engine.ExhaustSwitchover}
	})
	p := d.Primary()
	pName := p.Node.Name()
	pApp := apps[pName]
	pApp.bump(555)
	if err := pApp.f.Save(); err != nil {
		t.Fatal(err)
	}

	if err := d.KillApp(pName); err != nil {
		t.Fatal(err)
	}
	// Local restart: same node stays primary, fresh app instance appears.
	if !waitSettled(5*time.Second, func() bool {
		r := d.Replica(pName)
		return r.Engine.Role() == engine.RolePrimary && r.AppActive()
	}) {
		t.Fatalf("local restart did not recover; roles %v", d.roleSummary())
	}
	r := d.Replica(pName)
	r.mu.Lock()
	app := r.App.(*countingApp)
	r.mu.Unlock()
	if app == pApp {
		t.Fatal("app instance was not rebuilt")
	}
	app.mu.Lock()
	count := app.State.Count
	restored := append([]bool(nil), app.restoredLog...)
	app.mu.Unlock()
	if count != 555 {
		t.Fatalf("restart lost state: %d", count)
	}
	if len(restored) == 0 || !restored[0] {
		t.Fatalf("restart did not report restored: %v", restored)
	}
}

func TestMessagesSurviveSwitchover(t *testing.T) {
	d, apps := testDeployment(t, nil)
	p := d.Primary()
	pName := p.Node.Name()

	// Kill the primary node, then immediately send messages "during the
	// switchover": they must be retried to the new primary, none lost.
	if err := d.KillNode(pName); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 5; i++ {
		body := fmt.Sprintf("msg-%d", i)
		want = append(want, body)
		if _, err := d.Send([]byte(body)); err != nil {
			t.Fatal(err)
		}
	}

	if !waitSettled(5*time.Second, func() bool {
		np := d.Primary()
		if np == nil || np.Node.Name() == pName {
			return false
		}
		app := apps[np.Node.Name()]
		return len(app.messages()) == len(want)
	}) {
		np := d.Primary()
		if np == nil {
			t.Fatal("no new primary")
		}
		t.Fatalf("messages lost: %v", apps[np.Node.Name()].messages())
	}
	np := d.Primary()
	got := apps[np.Node.Name()].messages()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("order violated: %v", got)
		}
	}
	// Non-delivery during the switchover was detected either as failed
	// deliveries (retried) or as a routing gap (queued until the new
	// primary registered).
	st := d.Div.Stats()
	if st.Retries == 0 && st.NoRouteErrs == 0 {
		t.Errorf("no evidence of switchover-window queuing: %+v", st)
	}
}

func TestNodeRestartRejoinsAsBackup(t *testing.T) {
	d, _ := testDeployment(t, nil)
	p := d.Primary()
	pName := p.Node.Name()
	if err := d.KillNode(pName); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(5*time.Second, func() bool {
		np := d.Primary()
		return np != nil && np.Node.Name() != pName
	}) {
		t.Fatal("no takeover")
	}
	if err := d.RestartNode(pName); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(5*time.Second, func() bool {
		r := d.Replica(pName)
		return r.Engine.Role() == engine.RoleBackup
	}) {
		t.Fatalf("restarted node did not rejoin as backup: %v", d.roleSummary())
	}
	// Checkpoints flow to the rejoined backup.
	np := d.Primary()
	np.mu.Lock()
	app := np.App.(*countingApp)
	np.mu.Unlock()
	app.bump(1)
	if !waitSettled(3*time.Second, func() bool {
		return d.Replica(pName).Engine.Store().LastSeq() > 0
	}) {
		t.Fatal("no checkpoints to rejoined backup")
	}
}

func TestFaultInjectionUnknownNode(t *testing.T) {
	d, _ := testDeployment(t, nil)
	if err := d.KillNode("nope"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("got %v", err)
	}
	if err := d.BlueScreen("nope"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("got %v", err)
	}
	if err := d.KillApp("nope"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("got %v", err)
	}
	if err := d.KillEngine("nope"); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("got %v", err)
	}
}

func TestDeploymentWithoutMonitor(t *testing.T) {
	d, _ := testDeployment(t, func(c *Config) { c.SkipMonitor = true })
	if d.Monitor != nil {
		t.Fatal("monitor built despite SkipMonitor")
	}
	// Fault tolerance still operates (Section 2.2.4).
	p := d.Primary()
	if err := d.KillNode(p.Node.Name()); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(5*time.Second, func() bool {
		np := d.Primary()
		return np != nil && np.Node.Name() != p.Node.Name()
	}) {
		t.Fatal("takeover failed without monitor")
	}
}

func TestDeploymentWithoutApp(t *testing.T) {
	d, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDualNetworkDeployment(t *testing.T) {
	d, _ := testDeployment(t, func(c *Config) { c.DualNetwork = true })
	if len(d.Nets) != 2 {
		t.Fatalf("networks: %d", len(d.Nets))
	}
	// Partitioning one segment must not cause a switchover.
	p := d.Primary()
	pName := p.Node.Name()
	d.Nets[0].Partition("node1:engine-hb", "node2:engine-hb")
	time.Sleep(150 * time.Millisecond)
	if np := d.Primary(); np == nil || np.Node.Name() != pName {
		t.Fatalf("switchover on single-segment loss: %v", d.roleSummary())
	}
}

func TestCOMRegistryActivation(t *testing.T) {
	d, _ := testDeployment(t, nil)
	for _, node := range []*cluster.Node{d.Node1, d.Node2} {
		reg := node.Registry()
		// The install registered the OFTT coclasses.
		progIDs := reg.ProgIDs()
		want := map[string]bool{ProgIDEngine: false, ProgIDFTIM: false, ProgIDDiverter: false}
		for _, id := range progIDs {
			if _, ok := want[id]; ok {
				want[id] = true
			}
		}
		for id, seen := range want {
			if !seen {
				t.Fatalf("%s: ProgID %s not registered (have %v)", node.Name(), id, progIDs)
			}
		}
		// CoCreateInstance-style activation reaches the live engine.
		clsid, err := reg.CLSIDFromProgID(ProgIDEngine)
		if err != nil {
			t.Fatal(err)
		}
		unk, impl, err := reg.CreateInstance(clsid, com.IIDOFTTEngine)
		if err != nil {
			t.Fatal(err)
		}
		eng, ok := impl.(*engine.Engine)
		if !ok {
			t.Fatalf("activation returned %T", impl)
		}
		if eng.Node() != node.Name() {
			t.Fatalf("activated engine belongs to %s", eng.Node())
		}
		unk.Release()
	}
}

package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/opc"
)

// plantServerApp wraps a PLC + adapter + local OPC server as a ServerApp.
type plantServerApp struct {
	node    string
	plc     *device.PLC
	adapter *device.OPCAdapter
	server  *opc.Server
}

func newPlantServerApp(node string, seed int64) (*plantServerApp, error) {
	server := opc.NewServer("Plant." + node)
	plc := device.NewPLC("plc1", 5*time.Millisecond)
	plc.AttachSensor(device.NewSensor("temp", device.Constant(21), 0.1, seed))
	adapter, err := device.NewOPCAdapter(plc, device.NewBus(0), server, 5*time.Millisecond)
	if err != nil {
		return nil, err
	}
	return &plantServerApp{node: node, plc: plc, adapter: adapter, server: server}, nil
}

func (a *plantServerApp) Start() error {
	a.plc.Start()
	a.adapter.Start()
	return nil
}

func (a *plantServerApp) Stop() {
	a.adapter.Stop()
	a.plc.Stop()
}

func TestServerAppRunsOnBothNodes(t *testing.T) {
	var mu sync.Mutex
	built := map[string]int{}
	d, err := New(Config{
		Seed: 21,
		NewServerApp: func(node string) ServerApp {
			mu.Lock()
			built[node]++
			mu.Unlock()
			app, err := newPlantServerApp(node, 1)
			if err != nil {
				t.Error(err)
			}
			return app
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if built["node1"] != 1 || built["node2"] != 1 {
		mu.Unlock()
		t.Fatalf("server apps built: %v", built)
	}
	mu.Unlock()
	// Both copies run regardless of role: OPC servers are stateless
	// device interfaces (Figure 2 shows them on both nodes).
	if !d.ServerAppRunning("node1") || !d.ServerAppRunning("node2") {
		t.Fatal("server app not running on both nodes")
	}
	// Both engines monitor their server component.
	for _, node := range []string{"node1", "node2"} {
		comps := d.Replica(node).Engine.Components()
		found := false
		for _, c := range comps {
			if c == "opcserver" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s components: %v", node, comps)
		}
	}
}

func TestServerAppLocalRestartNoSwitchover(t *testing.T) {
	d, err := New(Config{
		Seed: 22,
		NewServerApp: func(node string) ServerApp {
			app, err := newPlantServerApp(node, 2)
			if err != nil {
				t.Error(err)
			}
			return app
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())
	if err := waitRoles(d, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	primary := d.Primary().Node.Name()

	// Kill the primary's OPC server app: it must be restarted in place
	// with no role change (stateless component, local-restart rule).
	if err := d.KillServerApp(primary); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(5*time.Second, func() bool {
		return d.ServerAppRunning(primary)
	}) {
		t.Fatal("server app never restarted")
	}
	if p := d.Primary(); p == nil || p.Node.Name() != primary {
		t.Fatalf("server-app failure caused a switchover: %v", d.roleSummary())
	}

	// And it keeps being restarted on repeated kills (KeepRestarting).
	for i := 0; i < 3; i++ {
		if err := d.KillServerApp(primary); err != nil {
			t.Fatal(err)
		}
		if !waitSettled(5*time.Second, func() bool {
			return d.ServerAppRunning(primary)
		}) {
			t.Fatalf("restart %d never happened", i+2)
		}
	}
	if p := d.Primary(); p == nil || p.Node.Name() != primary {
		t.Fatalf("repeated server-app failures flipped roles: %v", d.roleSummary())
	}
}

func TestKillServerAppWithoutServerApps(t *testing.T) {
	d, _ := testDeployment(t, nil)
	if err := d.KillServerApp("node1"); err == nil {
		t.Fatal("expected error with no server app configured")
	}
}

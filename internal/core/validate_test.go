package core

import (
	"errors"
	"testing"
	"time"
)

func validPairConfig() Config {
	c := Config{}
	c.applyDefaults()
	return c
}

func TestCoreConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
		field  string
	}{
		{name: "valid defaults", mutate: func(c *Config) {}},
		{
			name:   "pair nodes collide",
			mutate: func(c *Config) { c.Node2 = c.Node1 },
			want:   ErrDuplicateNode, field: "Node2",
		},
		{
			name:   "test node collides with pair",
			mutate: func(c *Config) { c.TestNode = c.Node1 },
			want:   ErrDuplicateNode, field: "TestNode",
		},
		{
			name:   "empty node name",
			mutate: func(c *Config) { c.Node1 = "" },
			want:   ErrDuplicateNode, field: "Node1",
		},
		{
			name:   "zero heartbeat interval",
			mutate: func(c *Config) { c.HeartbeatInterval = 0 },
			want:   ErrBadTimeout, field: "HeartbeatInterval",
		},
		{
			name:   "negative peer timeout",
			mutate: func(c *Config) { c.PeerTimeout = -time.Second },
			want:   ErrBadTimeout, field: "PeerTimeout",
		},
		{
			name:   "zero checkpoint period",
			mutate: func(c *Config) { c.CheckpointPeriod = 0 },
			want:   ErrBadTimeout, field: "CheckpointPeriod",
		},
		{
			name:   "peer timeout under heartbeat",
			mutate: func(c *Config) { c.PeerTimeout = c.HeartbeatInterval / 2 },
			want:   ErrBadTimeout, field: "PeerTimeout",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validPairConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(%v)", err, tc.want)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %T, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q", ce.Field, tc.field)
			}
		})
	}
}

// TestNewRejectsDuplicateNodes: the constructor path surfaces the typed
// error instead of building a half-broken deployment.
func TestNewRejectsDuplicateNodes(t *testing.T) {
	_, err := New(Config{Node1: "same", Node2: "same", SkipMonitor: true})
	if !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("New with duplicate nodes: %v, want ErrDuplicateNode", err)
	}
}

package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
)

func newDemo(t *testing.T, mutate func(*CallTrackConfig)) *CallTrackDeployment {
	t.Helper()
	cfg := CallTrackConfig{
		Config:     Config{Seed: 11},
		UpdateRate: 5 * time.Millisecond,
		SimTick:    2 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	ct, err := NewCallTrackDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ct.Shutdown(context.Background()) })
	if err := waitRoles(ct.Deployment, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	return ct
}

func waitSamples(t *testing.T, ct *CallTrackDeployment, atLeast int64) {
	t.Helper()
	if !waitSettled(5*time.Second, func() bool {
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() >= atLeast
	}) {
		tr := ct.ActiveTracker()
		if tr == nil {
			t.Fatal("no active tracker")
		}
		t.Fatalf("tracker stuck at %d samples (want >= %d)", tr.Samples(), atLeast)
	}
}

func TestCallTrackPipeline(t *testing.T) {
	ct := newDemo(t, nil)
	// Live telephone data flows: simulator -> OPC server (test PC) ->
	// DCOM -> OPC client group -> tracker on the primary.
	waitSamples(t, ct, 10)
	tr := ct.ActiveTracker()
	if msg := tr.Verify(); msg != "" {
		t.Fatalf("tracker invariants: %s", msg)
	}
	s := tr.Snapshot()
	if s.Lines != 5 || len(s.Histogram) != 6 {
		t.Fatalf("unexpected shape: %+v", s)
	}
}

// TestCallTrackDemoScenarios is the paper's Section 4 demonstration: the
// system keeps tracking call history through each injected failure, and
// the history recorded before the failure survives.
func TestCallTrackDemoScenarios(t *testing.T) {
	scenarios := []struct {
		name   string
		inject func(ct *CallTrackDeployment, primary string) error
	}{
		{"a_node_failure", func(ct *CallTrackDeployment, p string) error { return ct.KillNode(p) }},
		{"b_nt_crash", func(ct *CallTrackDeployment, p string) error { return ct.BlueScreen(p) }},
		{"c_app_failure", func(ct *CallTrackDeployment, p string) error { return ct.KillApp(p) }},
		{"d_middleware_failure", func(ct *CallTrackDeployment, p string) error { return ct.KillEngine(p) }},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ct := newDemo(t, nil)
			waitSamples(t, ct, 20)

			before := ct.ActiveTracker().Samples()
			primary := ct.Primary().Node.Name()
			if err := sc.inject(ct, primary); err != nil {
				t.Fatal(err)
			}

			// Recovery: some copy is live and tracking again.
			if !waitSettled(8*time.Second, func() bool {
				tr := ct.ActiveTracker()
				return tr != nil && tr.Samples() > before
			}) {
				t.Fatalf("tracking did not resume after %s", sc.name)
			}
			tr := ct.ActiveTracker()
			// History from before the failure survived (checkpoint
			// period bounds the loss window; samples are monotonic).
			after := tr.Samples()
			if after < before/2 {
				t.Fatalf("history lost: %d samples before, %d after", before, after)
			}
			if msg := tr.Verify(); msg != "" {
				t.Fatalf("invariants broken after %s: %s", sc.name, msg)
			}
		})
	}
}

func TestCallTrackLocalRestartKeepsHistory(t *testing.T) {
	ct := newDemo(t, func(c *CallTrackConfig) {
		c.Rule = engine.RecoveryRule{MaxLocalRestarts: 2, Exhausted: engine.ExhaustSwitchover}
	})
	waitSamples(t, ct, 20)
	primary := ct.Primary().Node.Name()
	before := ct.ActiveTracker().Samples()

	if err := ct.KillApp(primary); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(8*time.Second, func() bool {
		p := ct.Primary()
		if p == nil || p.Node.Name() != primary {
			return false // must stay on the same node (local restart)
		}
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() > before
	}) {
		t.Fatalf("local restart did not resume tracking on %s: %v",
			primary, ct.roleSummary())
	}
	if got := ct.ActiveTracker().Samples(); got < before/2 {
		t.Fatalf("history lost in local restart: %d -> %d", before, got)
	}
}

func TestCallTrackOperatorMessages(t *testing.T) {
	ct := newDemo(t, nil)
	if _, err := ct.Send([]byte("reset-display")); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(3*time.Second, func() bool {
		p := ct.Primary()
		if p == nil {
			return false
		}
		p.mu.Lock()
		app, _ := p.App.(*CallTrackApp)
		p.mu.Unlock()
		if app == nil {
			return false
		}
		var count int64
		app.f.WithLock(func() { count = app.Extra.MsgCount })
		return count == 1
	}) {
		t.Fatal("operator message never reached the Call Track app")
	}
}

func TestCallTrackHistogramRenders(t *testing.T) {
	ct := newDemo(t, nil)
	waitSamples(t, ct, 10)
	out := ct.ActiveTracker().RenderHistogram(30)
	if len(out) == 0 {
		t.Fatal("empty histogram")
	}
}

func TestCallTrackNodeRepairRejoins(t *testing.T) {
	ct := newDemo(t, nil)
	waitSamples(t, ct, 20)
	primary := ct.Primary().Node.Name()

	// Node failure -> switchover.
	if err := ct.KillNode(primary); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(8*time.Second, func() bool {
		p := ct.Primary()
		return p != nil && p.Node.Name() != primary && p.AppActive()
	}) {
		t.Fatal("no takeover")
	}

	// Field repair: the dead node reboots and rejoins as backup...
	if err := ct.RestartNode(primary); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(8*time.Second, func() bool {
		return ct.Replica(primary).Engine.Role() == engine.RoleBackup
	}) {
		t.Fatalf("repaired node did not rejoin: %v", ct.roleSummary())
	}
	// ...and receives the live history via checkpoints.
	if !waitSettled(5*time.Second, func() bool {
		return ct.Replica(primary).Engine.Store().LastSeq() > 0
	}) {
		t.Fatal("no checkpoints to the rejoined backup")
	}

	// Second failover, back onto the repaired node, history intact.
	before := ct.ActiveTracker().Samples()
	survivor := ct.Primary().Node.Name()
	if err := ct.KillNode(survivor); err != nil {
		t.Fatal(err)
	}
	if !waitSettled(8*time.Second, func() bool {
		p := ct.Primary()
		if p == nil || p.Node.Name() != primary {
			return false
		}
		tr := ct.ActiveTracker()
		return tr != nil && tr.Samples() > before
	}) {
		t.Fatalf("second failover failed: %v", ct.roleSummary())
	}
	if msg := ct.ActiveTracker().Verify(); msg != "" {
		t.Fatalf("history corrupted after double failover: %s", msg)
	}
}

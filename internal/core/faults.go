package core

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// FaultKind names one injectable process/node fault. The network faults
// (partitions, loss, latency, flapping) are separate methods because they
// target links rather than nodes.
type FaultKind string

// Process and node faults. The first four are the paper's Section 4
// demonstration scenarios; the hang variants model a live-but-wedged
// process, which a kill cannot (heartbeats stop but the process survives).
const (
	FaultKillNode   FaultKind = "kill-node"   // scenario (a): power off the machine
	FaultBlueScreen FaultKind = "bluescreen"  // scenario (b): NT crash
	FaultKillApp    FaultKind = "kill-app"    // scenario (c): application failure
	FaultKillEngine FaultKind = "kill-engine" // scenario (d): middleware failure
	FaultHangApp    FaultKind = "hang-app"    // app alive but silent (paused FTIM beats)
	FaultHangEngine FaultKind = "hang-engine" // engine alive but silent (paused peer beats)
)

// scenarioFaults maps the Section 4 experiment labels onto fault kinds.
var scenarioFaults = map[string]FaultKind{
	"a:node-failure":        FaultKillNode,
	"b:nt-crash":            FaultBlueScreen,
	"c:application-failure": FaultKillApp,
	"d:middleware-failure":  FaultKillEngine,
}

// ScenarioFault resolves a Section 4 scenario label ("a:node-failure" ...)
// to its fault kind.
func ScenarioFault(scenario string) (FaultKind, bool) {
	k, ok := scenarioFaults[scenario]
	return k, ok
}

// Inject applies one fault kind to one node: the single entry point the
// experiments and the chaos engine share, so injection semantics cannot
// drift between them.
func (d *Deployment) Inject(kind FaultKind, nodeName string) error {
	switch kind {
	case FaultKillNode:
		return d.KillNode(nodeName)
	case FaultBlueScreen:
		return d.BlueScreen(nodeName)
	case FaultKillApp:
		return d.KillApp(nodeName)
	case FaultKillEngine:
		return d.KillEngine(nodeName)
	case FaultHangApp:
		return d.HangApp(nodeName)
	case FaultHangEngine:
		return d.HangEngine(nodeName)
	default:
		return fmt.Errorf("core: unknown fault kind %q", kind)
	}
}

// HangApp wedges a node's application without killing it: the FTIM's
// liveness beats pause, so the engine sees the same silence as a real hang
// and runs its recovery provision (the local restart rebuilds the app,
// clearing the hang). ResumeApp heals it early.
func (d *Deployment) HangApp(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.mu.Lock()
	f := r.FTIM
	r.mu.Unlock()
	if f == nil {
		return fmt.Errorf("core: no application FTIM on %s", nodeName)
	}
	f.PauseHeartbeats()
	return nil
}

// ResumeApp unwedges an application hung by HangApp. A no-op if the engine
// already restarted the app (the rebuilt FTIM starts unpaused).
func (d *Deployment) ResumeApp(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.mu.Lock()
	f := r.FTIM
	r.mu.Unlock()
	if f != nil {
		f.ResumeHeartbeats()
	}
	return nil
}

// HangEngine wedges a node's engine: its peer heartbeats pause while the
// engine keeps running. The peer declares it dead and takes over; when the
// hang clears (ResumeEngine) the pair is dual-primary until the split-brain
// tie-break demotes one side — the exact ill-timed overlap hand-written
// scenarios never exercise.
func (d *Deployment) HangEngine(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.Engine.SuspendBeats()
	return nil
}

// ResumeEngine unwedges an engine hung by HangEngine.
func (d *Deployment) ResumeEngine(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	r.Engine.ResumeBeats()
	return nil
}

// NodeNames returns the pair's machine names (node1 first).
func (d *Deployment) NodeNames() []string {
	return []string{d.cfg.Node1, d.cfg.Node2}
}

// --- Network faults: links rather than nodes ---

// PartitionPair cuts all traffic between the pair's two nodes on every
// segment, both directions. The test node keeps reaching both sides, so
// the diverter and monitor stay connected — a pure inter-node partition.
func (d *Deployment) PartitionPair() {
	for _, n := range d.Nets {
		n.PartitionPrefix(d.cfg.Node1+":", d.cfg.Node2+":")
	}
}

// PartitionOneWay cuts traffic from one node toward the other on every
// segment while the reverse direction keeps flowing — the asymmetric
// failure (one dead transmit path) that drives the hardest split-brain
// shapes: only one engine loses the other's heartbeats.
func (d *Deployment) PartitionOneWay(fromNode, toNode string) {
	for _, n := range d.Nets {
		n.PartitionPrefixOneWay(fromNode+":", toNode+":")
	}
}

// HealNetworks removes every partition on every segment and clears loss
// and latency impairments.
func (d *Deployment) HealNetworks() {
	for _, n := range d.Nets {
		n.HealAll()
		n.SetLoss(0)
		n.SetLatency(0, 0)
	}
}

// SetLoss applies a datagram loss rate to every segment (0 clears).
func (d *Deployment) SetLoss(rate float64) {
	for _, n := range d.Nets {
		n.SetLoss(rate)
	}
}

// SetLatency applies delivery latency/jitter to every segment (0 clears).
func (d *Deployment) SetLatency(latency, jitter time.Duration) {
	for _, n := range d.Nets {
		n.SetLatency(latency, jitter)
	}
}

// NewLinkFlappers creates one stopped Flapper per segment for the
// inter-node link. Callers Start/Stop them (Stop leaves links healed).
func (d *Deployment) NewLinkFlappers(downFor, upFor time.Duration) []*netsim.Flapper {
	out := make([]*netsim.Flapper, 0, len(d.Nets))
	for _, n := range d.Nets {
		out = append(out, n.NewFlapper(d.cfg.Node1+":", d.cfg.Node2+":", downFor, upFor))
	}
	return out
}

// InterruptCheckpointTransfer severs a node's outbound checkpoint
// connection mid-stream (and immediately restores the endpoint, so the
// next transfer can reconnect). The sender sees a write error, marks the
// stream dirty, and the FTIM re-bases with a full checkpoint — the
// transfer-interruption window chaos campaigns aim faults into.
func (d *Deployment) InterruptCheckpointTransfer(nodeName string) error {
	r := d.Replica(nodeName)
	if r == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchNode, nodeName)
	}
	addr := netsim.Addr(nodeName + ":engine-ckpt-cli")
	for _, n := range d.Nets {
		n.FailEndpoint(addr)
		n.RestoreEndpoint(addr)
	}
	return nil
}

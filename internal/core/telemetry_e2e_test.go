package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestSwitchoverTraceOrdering kills the primary node and asserts the hub
// tracer stitches the recovery into one completed timeline in causal
// order: heartbeat-loss detection, the take-over decision, the switchover
// itself, the diverter rebind, and the first post-failover delivery.
func TestSwitchoverTraceOrdering(t *testing.T) {
	d, _ := testDeployment(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	p, err := d.WaitForPrimaryContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	victim := p.Node.Name()
	if err := d.KillNode(victim); err != nil {
		t.Fatal(err)
	}

	// The survivor takes over and activates its copy.
	if !waitSettled(5*time.Second, func() bool {
		np := d.Primary()
		return np != nil && np.Node.Name() != victim && np.AppActive()
	}) {
		t.Fatal("no failover primary emerged")
	}

	// Drive a message through the rebound route: the first delivery is the
	// terminal span that completes the timeline.
	if _, err := d.Send([]byte("post-failover")); err != nil {
		t.Fatal(err)
	}
	if !d.Div.Drain(d.cfg.Component, 3*time.Second) {
		t.Fatal("post-failover message never delivered")
	}

	var trace telemetry.Trace
	if !waitSettled(3*time.Second, func() bool {
		for _, c := range d.Telemetry.Tracer().Traces() {
			if c.HasOrdered(telemetry.PhaseDetect, telemetry.PhaseDecision,
				telemetry.PhaseSwitchover, telemetry.PhaseRebind, telemetry.PhaseDeliver) {
				trace = c
				return true
			}
		}
		return false
	}) {
		t.Fatalf("no completed trace with the full recovery ordering; have %d traces: %v",
			len(d.Telemetry.Tracer().Traces()), d.Telemetry.Tracer().Traces())
	}

	if !trace.Complete {
		t.Fatalf("trace not marked complete: %v", trace)
	}
	for i := 1; i < len(trace.Events); i++ {
		if trace.Events[i].AtUS < trace.Events[i-1].AtUS {
			t.Fatalf("timestamps regress at event %d: %v", i, trace.Events)
		}
	}

	// The survivor's instruments saw the switchover.
	survivor := d.Primary().Node.Name()
	snap := d.Telemetry.Snapshot()
	if got := snap.Metrics.Counters[`oftt_engine_switchovers_total{node="`+survivor+`"}`]; got < 1 {
		t.Fatalf("switchover counter = %d, want >= 1 (counters: %v)", got, snap.Metrics.Counters)
	}
	if h, ok := snap.Metrics.FindHistogram(`oftt_engine_peer_detect_us{node="` + survivor + `"}`); !ok || h.Count < 1 {
		t.Fatalf("peer detection histogram empty (histograms: %v)", snap.Metrics.Histograms)
	}
}

// TestWaitContextCancellation covers the context-aware wait surface: an
// already-cancelled context fails fast with ErrNoPrimary semantics.
func TestWaitContextCancellation(t *testing.T) {
	d, _ := testDeployment(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A primary exists, so even a dead context succeeds on the fast path.
	if _, err := d.WaitForPrimaryContext(ctx); err != nil {
		t.Fatalf("fast path with settled primary: %v", err)
	}
	// Shutdown honors its context.
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Package oftt is the public API of the OFTT (OLE Fault Tolerance
// Technology) reproduction: a fault tolerance middleware toolkit for
// process monitoring and control applications, after Hecht, An, Zhang &
// He, DSN 2000.
//
// OFTT makes an application fault tolerant with minimal modification by
// pairing two nodes into a single logical execution unit: the primary runs
// the application and periodically checkpoints its state to the backup;
// the OFTT engine on each node detects failures by heartbeat timeout and
// recovers by local restart (transient faults) or switchover (permanent
// faults). A message diverter makes the pair look like one endpoint to the
// outside world, and a system monitor displays component status.
//
// # Quick start
//
// Implement ReplicatedApp, then:
//
//	d, err := oftt.NewDeployment(oftt.DeploymentConfig{
//	    NewApp: func(node string) oftt.ReplicatedApp { return newMyApp(node) },
//	})
//
// The toolkit elects a primary, activates exactly one copy, checkpoints
// its registered state, and transparently switches over on failure. Inject
// faults with KillNode / BlueScreen / KillApp / KillEngine to test. A
// complete runnable walkthrough is in examples/quickstart.
//
// # Initialization order
//
// Initialize registers the application with its engine AND immediately
// enters role negotiation, so any state registered afterwards misses the
// first activation. Stateful applications should instead pair
// InitializeDeferred with AttachContext: InitializeDeferred creates the
// FTIM without starting role delivery, the application then calls
// RegisterState for every checkpointable region, and AttachContext
// releases the role callbacks. Deployments built with
// NewDeployment do this ordering for you (Setup runs between the two).
//
// # Observability
//
// Every Deployment carries a Telemetry hub: a metrics Registry (counters,
// gauges, histograms — lock-free and allocation-free on the record path),
// a status Store behind the classic Monitor dashboard, and a Tracer that
// stitches recovery timelines (failure detection -> decision ->
// switchover -> diverter rebind -> first redelivery) into ordered traces.
// Components on other machines forward into the hub through the Sink
// interface, locally or over the simulated DCOM transport; cmd/oftt-sysmon
// serves the hub as a Prometheus-style text endpoint plus a JSON snapshot.
//
// # The paper's API
//
// The original C API maps onto ClientFTIM methods:
//
//	OFTTInitialize     -> Initialize (or InitializeServer for OPC servers)
//	OFTTSelSave        -> (*ClientFTIM).SelSave
//	OFTTSave           -> (*ClientFTIM).Save
//	OFTTGetMyRole      -> (*ClientFTIM).MyRole
//	OFTTWatchdog*      -> (*ClientFTIM).Watchdog{Create,Set,Reset,Delete}
//	OFTTDistress       -> (*ClientFTIM).Distress
package oftt

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ftim"
	"repro/internal/monitor"
	"repro/internal/opc"
	"repro/internal/telemetry"
)

// Roles of a node in the primary/backup pair.
type Role = engine.Role

// Role values.
const (
	RoleNegotiating = engine.RoleNegotiating
	RolePrimary     = engine.RolePrimary
	RoleBackup      = engine.RoleBackup
	RoleShutdown    = engine.RoleShutdown
)

// RecoveryRule controls whether a detected failure is recovered locally
// (transient-fault provision) or by switchover (permanent-fault provision).
type RecoveryRule = engine.RecoveryRule

// Exhausted-restart actions for RecoveryRule.
const (
	ExhaustSwitchover     = engine.ExhaustSwitchover
	ExhaustKeepRestarting = engine.ExhaustKeepRestarting
	ExhaustGiveUp         = engine.ExhaustGiveUp
)

// StartupPolicy is the role-negotiation policy of the paper's Section 3.2,
// including the retry logic that fixed the NT startup non-determinism
// problem.
type StartupPolicy = engine.StartupPolicy

// Alone actions for StartupPolicy.
const (
	AloneBecomePrimary = engine.AloneBecomePrimary
	AloneShutdown      = engine.AloneShutdown
)

// Engine is the per-node OFTT engine (role management, failure detection,
// recovery management, status reporting).
type Engine = engine.Engine

// EngineConfig parameterizes an engine when assembling a pair manually;
// most users go through NewDeployment instead.
type EngineConfig = engine.Config

// ClientFTIM is the fault tolerance interface module linked into a
// stateful (OPC client) application.
type ClientFTIM = ftim.ClientFTIM

// ServerFTIM is the stateless (OPC server) flavor: heartbeats and
// monitoring without checkpointing.
type ServerFTIM = ftim.ServerFTIM

// FTIMConfig parameterizes Initialize.
type FTIMConfig = ftim.Config

// ServerFTIMConfig parameterizes InitializeServer.
type ServerFTIMConfig = ftim.ServerConfig

// CaptureMode selects the periodic checkpoint flavor. The trade-off is
// capture cost versus restore simplicity:
//
//   - CaptureFull ships every registered region each period: the largest
//     frames and capture cost, but the backup can always restore from the
//     latest snapshot alone.
//   - CaptureSelective ships only SelSave-designated regions: cheap when
//     the application knows what changed, but regions outside the
//     selection are only as fresh as the last full capture.
//   - CaptureIncremental (the default) ships only regions whose contents
//     changed since the previous capture: near-free in steady state, at
//     the cost of the backup needing an unbroken chain from the last full
//     base. The FTIM re-bases with a full capture automatically after any
//     ship failure or activation.
type CaptureMode = ftim.CaptureMode

// Capture modes.
const (
	CaptureFull        = ftim.CaptureFull
	CaptureSelective   = ftim.CaptureSelective
	CaptureIncremental = ftim.CaptureIncremental
)

// Initialize is OFTTInitialize for stateful applications. Role delivery
// begins immediately, so all RegisterState calls must already have
// happened; when they cannot, use InitializeDeferred + AttachContext.
func Initialize(cfg FTIMConfig) (*ClientFTIM, error) { return ftim.Initialize(cfg) }

// InitializeDeferred is Initialize with role delivery (and thus the first
// Activate callback) held back until AttachContext is called.
// Register all checkpointable state between the two calls; an FTIM left
// unattached heartbeats but never activates its copy.
func InitializeDeferred(cfg FTIMConfig) (*ClientFTIM, error) { return ftim.InitializeDeferred(cfg) }

// InitializeServer is OFTTInitialize for stateless OPC server applications.
func InitializeServer(cfg ServerFTIMConfig) (*ServerFTIM, error) { return ftim.InitializeServer(cfg) }

// ReplicatedApp is the application contract managed by a Deployment.
type ReplicatedApp = core.ReplicatedApp

// ServerApp is the stateless OPC-server application contract (Figure 2's
// "OPC Server App"): one instance runs on every node under a server FTIM.
type ServerApp = core.ServerApp

// MessageHandler is implemented by applications consuming diverter
// messages.
type MessageHandler = core.MessageHandler

// Deployment is a running OFTT pair (plus test node) — the Figure 3
// configuration.
type Deployment = core.Deployment

// Replica is one node's half of the pair.
type Replica = core.Replica

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig = core.Config

// NewDeployment assembles and starts a fault-tolerant pair running the
// configured application.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) { return core.New(cfg) }

// CallTrackDeployment is the paper's Section 4 demonstration system.
type CallTrackDeployment = core.CallTrackDeployment

// CallTrackConfig parameterizes the demonstration.
type CallTrackConfig = core.CallTrackConfig

// NewCallTrackDeployment assembles the Figure 3 demo: a telephone system
// simulator on the test PC and the fault-tolerant Call Track application
// on the redundant pair.
func NewCallTrackDeployment(cfg CallTrackConfig) (*CallTrackDeployment, error) {
	return core.NewCallTrackDeployment(cfg)
}

// Multi-group fabric: one simulated cluster hosting many independent FT
// groups on a shared node pool, with per-node-pair heartbeat multiplexing
// and lease/quorum election for groups of three or more replicas.
type (
	// Fabric is the shared cluster substrate: node pool, network, node
	// transports, telemetry hub, and diverter.
	Fabric = core.Fabric
	// FabricConfig parameterizes NewFabric.
	FabricConfig = core.FabricConfig
	// Group is one FT group's view onto the fabric (the analog of a
	// Deployment: Primary, WaitForRolesContext, Send, Inject, Shutdown).
	Group = core.Group
	// GroupSpec parameterizes Fabric.AddGroup.
	GroupSpec = core.GroupSpec
	// FaultKind names an injectable failure mode.
	FaultKind = core.FaultKind
	// ConfigError ties a validation failure to the offending config
	// field; it unwraps to the Err* sentinels below.
	ConfigError = core.ConfigError
)

// NewFabric boots the shared cluster: one agent process and beat
// transport per node, ready for AddGroup.
func NewFabric(cfg FabricConfig) (*Fabric, error) { return core.NewFabric(cfg) }

// The injectable failure modes (Group.Inject / Deployment.Inject).
const (
	FaultKillNode   = core.FaultKillNode
	FaultBlueScreen = core.FaultBlueScreen
	FaultKillApp    = core.FaultKillApp
	FaultKillEngine = core.FaultKillEngine
	FaultHangApp    = core.FaultHangApp
	FaultHangEngine = core.FaultHangEngine
)

// Typed configuration-validation sentinels (match with errors.Is).
var (
	ErrDuplicateNode  = core.ErrDuplicateNode
	ErrUnknownNode    = core.ErrUnknownNode
	ErrBadTimeout     = core.ErrBadTimeout
	ErrTooFewReplicas = core.ErrTooFewReplicas
	ErrDuplicateGroup = core.ErrDuplicateGroup
)

// Observability surface: the telemetry hub behind every Deployment's
// Telemetry field, usable standalone for manually assembled pairs.
type (
	// TelemetryHub aggregates statuses, metrics, and recovery traces; it
	// implements TelemetrySink and serves /metrics + /snapshot.json via
	// its Handler method.
	TelemetryHub = telemetry.Hub
	// TelemetrySink is the unified reporting interface components push
	// through, locally (a *TelemetryHub) or across machines (a remote
	// sink over DCOM).
	TelemetrySink = telemetry.Sink
	// Registry holds named counters, gauges, and histograms.
	Registry = telemetry.Registry
	// Counter is a monotonically increasing metric.
	Counter = telemetry.Counter
	// Gauge is a settable level metric.
	Gauge = telemetry.Gauge
	// Histogram is a fixed-bucket distribution metric.
	Histogram = telemetry.Histogram
	// Tracer assembles recovery-timeline traces from span events.
	Tracer = telemetry.Tracer
	// Trace is one assembled recovery timeline.
	Trace = telemetry.Trace
	// SpanEvent is a single phase marker on a recovery timeline.
	SpanEvent = telemetry.SpanEvent
	// Phase names a recovery-timeline stage.
	Phase = telemetry.Phase
	// ComponentStatus is one monitored component's current state row.
	ComponentStatus = telemetry.Status
	// MonitorEvent is one append-only observability log entry.
	MonitorEvent = telemetry.Event
	// Monitor is the classic status dashboard, a view over a hub's store.
	Monitor = monitor.Monitor
)

// Recovery-timeline phases, in their causal order across a failover.
const (
	PhaseHeartbeatMiss = telemetry.PhaseHeartbeatMiss
	PhaseDetect        = telemetry.PhaseDetect
	PhaseDecision      = telemetry.PhaseDecision
	PhaseRestart       = telemetry.PhaseRestart
	PhaseSwitchover    = telemetry.PhaseSwitchover
	PhaseRebind        = telemetry.PhaseRebind
	PhaseDeliver       = telemetry.PhaseDeliver
	PhaseRecovered     = telemetry.PhaseRecovered
)

// NewTelemetryHub creates a standalone hub retaining up to maxEvents log
// entries (0 uses the default).
func NewTelemetryHub(maxEvents int) *TelemetryHub { return telemetry.NewHub(maxEvents) }

// NewMonitor builds the classic dashboard view over a hub's status store.
func NewMonitor(h *TelemetryHub) *Monitor { return monitor.FromHub(h) }

// OPC data-access surface, re-exported for applications that speak to OPC
// servers directly.
type (
	// Variant is the OLE VARIANT analog carried by OPC items.
	Variant = opc.Variant
	// Quality is the OPC DA 16-bit quality word.
	Quality = opc.Quality
	// ItemState is the (value, quality, timestamp) read result.
	ItemState = opc.ItemState
	// ItemDef describes an OPC namespace entry.
	ItemDef = opc.ItemDef
	// OPCServer publishes a namespace of items.
	OPCServer = opc.Server
	// OPCClient reads, writes, and subscribes to a server.
	OPCClient = opc.Client
	// OPCGroup is a subscription group with update rate and deadband.
	//
	// Deprecated: use Subscription via OPCClient.Subscribe.
	OPCGroup = opc.Group
	// GroupConfig parameterizes AddGroup.
	//
	// Deprecated: use SubscriptionConfig.
	GroupConfig = opc.GroupConfig
	// Subscription is a live data-change subscription on the shared scan
	// cycle, created by OPCClient.Subscribe.
	Subscription = opc.Subscription
	// SubscriptionConfig parameterizes OPCClient.Subscribe.
	SubscriptionConfig = opc.SubscriptionConfig
	// ItemOptions carries per-item subscription overrides.
	ItemOptions = opc.ItemOptions
	// ItemUpdate is one entry in an OPCServer.Publish batch.
	ItemUpdate = opc.ItemUpdate
)

// NewOPCServer creates an OPC server with an empty namespace.
func NewOPCServer(name string) *OPCServer { return opc.NewServer(name) }

// NewOPCClient wraps a server connection (local or DCOM-remote).
func NewOPCClient(conn opc.Connection) *OPCClient { return opc.NewClient(conn) }

// Variant constructors.
var (
	VBool = opc.VBool
	VI4   = opc.VI4
	VI8   = opc.VI8
	VR4   = opc.VR4
	VR8   = opc.VR8
	VStr  = opc.VStr
)

// Common quality words.
const (
	QualityGood          = opc.GoodNonSpecific
	QualityBadNotConn    = opc.BadNotConnected
	QualityBadDevice     = opc.BadDeviceFailure
	QualityBadComm       = opc.BadCommFailure
	QualityLastUsable    = opc.UncertainLastUsable
	QualityLocalOverride = opc.GoodLocalOverride
)

// OPC sentinel errors, for errors.Is branching on the data-access surface.
var (
	ErrOPCUnknownItem    = opc.ErrUnknownItem
	ErrOPCClosed         = opc.ErrClosed
	ErrOPCBadDeadband    = opc.ErrBadDeadband
	ErrOPCBadUpdateRate  = opc.ErrBadUpdateRate
	ErrOPCDuplicateGroup = opc.ErrDuplicateGroup
	ErrOPCDuplicateItem  = opc.ErrDuplicateItem
)

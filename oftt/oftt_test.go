package oftt_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/oftt"
)

// facadeApp exercises the public API exactly as a downstream user would.
type facadeApp struct {
	mu    sync.Mutex
	f     *oftt.ClientFTIM
	state struct{ N int64 }
}

func (a *facadeApp) Setup(f *oftt.ClientFTIM) error {
	a.mu.Lock()
	a.f = f
	a.mu.Unlock()
	if err := f.RegisterState("n", &a.state); err != nil {
		return err
	}
	return f.SelSave("n")
}
func (a *facadeApp) Activate(bool) {}
func (a *facadeApp) Deactivate()   {}
func (a *facadeApp) Stop()         {}

func TestPublicAPIEndToEnd(t *testing.T) {
	apps := map[string]*facadeApp{}
	var mu sync.Mutex
	d, err := oftt.NewDeployment(oftt.DeploymentConfig{
		Component: "facade",
		Seed:      77,
		Mode:      oftt.CaptureSelective,
		Rule:      oftt.RecoveryRule{MaxLocalRestarts: 1, Exhausted: oftt.ExhaustSwitchover},
		NewApp: func(node string) oftt.ReplicatedApp {
			a := &facadeApp{}
			mu.Lock()
			apps[node] = a
			mu.Unlock()
			return a
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	p, err := d.WaitForPrimaryContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine.Role() != oftt.RolePrimary {
		t.Fatalf("role: %v", p.Engine.Role())
	}

	// The paper's API surface through the facade.
	mu.Lock()
	app := apps[p.Node.Name()]
	mu.Unlock()
	app.f.WithLock(func() { app.state.N = 11 })
	if app.f.MyRole() != oftt.RolePrimary {
		t.Fatal("MyRole")
	}
	if err := app.f.Save(); err != nil {
		t.Fatal(err)
	}
	if err := app.f.WatchdogCreate("wd"); err != nil {
		t.Fatal(err)
	}
	if err := app.f.WatchdogSet("wd", time.Second); err != nil {
		t.Fatal(err)
	}
	if err := app.f.WatchdogReset("wd"); err != nil {
		t.Fatal(err)
	}
	if err := app.f.WatchdogDelete("wd"); err != nil {
		t.Fatal(err)
	}
	if err := app.f.SetRecoveryRule(oftt.RecoveryRule{
		MaxLocalRestarts: 0, Exhausted: oftt.ExhaustSwitchover}); err != nil {
		t.Fatal(err)
	}

	// Failover through the facade.
	if err := d.KillNode(p.Node.Name()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if np := d.Primary(); np != nil && np.Node.Name() != p.Node.Name() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no takeover through the public API")
}

func TestPublicOPCSurface(t *testing.T) {
	s := oftt.NewOPCServer("Public.OPC.1")
	if err := s.AddItem(oftt.ItemDef{Tag: "x", Rights: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue("x", oftt.VR8(5), oftt.QualityGood, time.Now()); err != nil {
		t.Fatal(err)
	}
	c := oftt.NewOPCClient(s)
	defer c.Close()
	states, err := c.SyncRead("x")
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := states[0].Value.AsFloat(); f != 5 {
		t.Fatalf("read %v", f)
	}
	if !states[0].Quality.IsGood() {
		t.Fatal("quality")
	}
	// Variant constructors through the facade.
	for _, v := range []oftt.Variant{oftt.VBool(true), oftt.VI4(1), oftt.VI8(2),
		oftt.VR4(3), oftt.VR8(4), oftt.VStr("s")} {
		if v.IsEmpty() {
			t.Fatalf("constructor produced empty variant: %+v", v)
		}
	}
}
